"""Transfer operators between hierarchy levels: restrict and prolongate.

The coarse problem's solution is lifted back to the finer level by placing
every chain member along its coarse node's segment at its cumulative
nucleotide offset — the same genomic-coordinate convention
``initialize_layout`` uses — plus a small deterministic jitter (driven by
the package's Xoshiro256+ streams) that breaks the collinearity of freshly
prolonged members so the fine-level SGD can separate them.

Restriction is the adjoint used to push an explicit initial layout down the
hierarchy: a coarse node inherits its chain head's start point and its chain
tail's end point, which is exact on layouts where chains are laid out
contiguously (and a sane summary on arbitrary ones).
"""
from __future__ import annotations

import numpy as np

from ..core.layout import Layout, NodeDataLayout
from ..prng.xoshiro import Xoshiro256Plus
from .coarsen import CoarseningLevel

__all__ = ["prolongate", "restrict"]


def restrict(fine_layout: Layout, level: CoarseningLevel) -> Layout:
    """Project a fine layout onto the coarse graph of ``level``.

    Each coarse segment spans from its chain head's start point to its chain
    tail's end point; ``prolongate`` of the result reproduces a contiguously
    laid out chain exactly (up to jitter).
    """
    if fine_layout.n_nodes != level.n_fine:
        raise ValueError("fine layout does not match the level's fine graph")
    heads = level.chain_members[level.chain_offsets[:-1]]
    tails = level.chain_members[level.chain_offsets[1:] - 1]
    coords = np.empty((2 * level.n_coarse, 2), dtype=np.float64)
    coords[0::2] = fine_layout.coords[2 * heads]
    coords[1::2] = fine_layout.coords[2 * tails + 1]
    return Layout(coords, fine_layout.data_layout)


def prolongate(
    coarse_layout: Layout,
    level: CoarseningLevel,
    jitter: float = 0.0,
    seed: int = 0,
    data_layout: NodeDataLayout = NodeDataLayout.SOA,
) -> Layout:
    """Lift a coarse layout to the fine graph of ``level``.

    Every fine node is assigned coordinates (the operator is total): member
    ``m`` of a chain with nucleotide span ``L`` occupies the fraction
    ``[offset_m, offset_m + len_m] / L`` of its coarse segment. Chains of
    zero nucleotide length fall back to spacing their members evenly by
    chain rank, so the segment's shape survives and ``restrict`` remains an
    exact right inverse. When ``jitter > 0``, members of multi-node chains
    are perturbed by uniform noise in ``[-jitter, jitter)`` drawn from a
    ``seed``-keyed Xoshiro256+ stream per fine node — deterministic for a
    given (level, seed), and never applied to singleton chains, whose
    coordinates are copied exactly.
    """
    if coarse_layout.n_nodes != level.n_coarse:
        raise ValueError("coarse layout does not match the level's coarse graph")
    proj = level.projection
    n_fine = level.n_fine
    starts = coarse_layout.coords[2 * proj]          # (n_fine, 2)
    ends = coarse_layout.coords[2 * proj + 1]
    span = ends - starts
    total = level.coarse.node_lengths[proj].astype(np.float64)
    off = level.member_offset.astype(np.float64)
    length = level.fine.node_lengths.astype(np.float64)
    # Rank-based fallback coordinates for zero-length chains.
    sizes = level.chain_sizes()
    rank = np.empty(n_fine, dtype=np.float64)
    rank[level.chain_members] = (
        np.arange(n_fine, dtype=np.float64)
        - np.repeat(level.chain_offsets[:-1], sizes).astype(np.float64))
    zero = total <= 0
    safe_total = np.where(zero, sizes[proj].astype(np.float64), total)
    off = np.where(zero, rank, off)
    length = np.where(zero, 1.0, length)
    frac_start = (off / safe_total)[:, None]
    frac_end = ((off + length) / safe_total)[:, None]
    coords = np.empty((2 * n_fine, 2), dtype=np.float64)
    coords[0::2] = starts + frac_start * span
    coords[1::2] = starts + frac_end * span
    if jitter > 0.0:
        multi = np.repeat(level.chain_sizes()[proj] > 1, 2)
        if np.any(multi):
            rng = Xoshiro256Plus(seed, n_streams=2 * n_fine)
            noise = np.stack([rng.next_double(), rng.next_double()], axis=1)
            coords[multi] += (noise[multi] - 0.5) * (2.0 * jitter)
    return Layout(coords, data_layout)
