"""Table I — properties of the representative pangenomes.

Prints nucleotides / nodes / edges / paths for the HLA-DRB1-, MHC- and
Chr.1-like synthetic graphs next to the paper's full-scale values.
"""
from __future__ import annotations

from ...graph import compute_stats
from ...synth import REPRESENTATIVE_SPECS
from ..registry import CaseResult, bench_case
from ..tables import format_sci, format_table


@bench_case("table01_graph_properties", source="Table I", suites=("tables",))
def run(ctx) -> CaseResult:
    """Representative graphs keep the paper's size ordering and sparsity."""
    stats = {name: compute_stats(g, name) for name, g in ctx.representative_graphs.items()}

    out = CaseResult()
    rows = []
    for name, st in stats.items():
        paper = REPRESENTATIVE_SPECS[name].paper
        rows.append([
            name,
            format_sci(st.n_nucleotides), format_sci(paper.n_nucleotides),
            format_sci(st.n_nodes), format_sci(paper.n_nodes),
            format_sci(st.n_edges), format_sci(paper.n_edges),
            st.n_paths, int(paper.n_paths),
            round(st.avg_degree, 2),
        ])
        # The representative graphs must keep the paper's size ordering and
        # sparsity even at reduced scale.
        assert st.avg_degree < 4.0
        assert st.density < 0.05
        out.add(f"{name}_n_nodes", st.n_nodes, direction="info")
        out.add(f"{name}_avg_degree", st.avg_degree, direction="info")
    assert stats["HLA-DRB1"].n_nucleotides < stats["MHC"].n_nucleotides < stats["Chr.1"].n_nucleotides
    assert stats["HLA-DRB1"].n_nodes < stats["Chr.1"].n_nodes

    out.tables.append(format_table(
        ["Pangenome", "#Nuc", "#Nuc(paper)", "#Nodes", "#Nodes(paper)",
         "#Edges", "#Edges(paper)", "#Paths", "#Paths(paper)", "deg"],
        rows,
        title="Table I: properties of representative pangenomes (scaled reproduction vs paper)",
    ))
    return out
