"""Versioned JSONL trace sink (``LayoutParams(trace=...)`` / ``--trace``).

File layout — one JSON object per line, mirroring the schema discipline of
:mod:`repro.bench.schema` (validated writes, explicit version, loud
rejection of documents a build cannot read)::

    {"record": "header", "schema_version": "1.0", "meta": {...}}
    {"record": "event", "name": "iteration", "t0": ..., "dur": ...,
     "iteration": 0, "count": 1, "labels": {"engine": "cpu-baseline"}}
    ...
    {"record": "end", "events": 42, "dropped": 0}

Versioning contract: ``schema_version`` is ``"<major>.<minor>"``. A reader
accepts any minor of its own major (minor bumps only ever *add* record
kinds or optional fields — unknown record kinds are skipped on read) and
rejects any other major outright. The ``end`` record both marks a complete
write (a truncated file fails loudly, like a half-written BENCH json would)
and carries the ring-buffer drop count for multi-worker traces.

Timestamps are monotonic-clock seconds (:mod:`repro.obs.clock`) with an
arbitrary per-boot epoch: durations and within-file orderings are
meaningful, absolute values are not. Deliberately **no wall-clock date** is
recorded — trace files of the same run are byte-identical modulo the
monotonic timestamps, which keeps the structure-determinism tests honest.
"""
from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .tracer import TraceEvent

__all__ = [
    "TRACE_SCHEMA_MAJOR",
    "TRACE_SCHEMA_MINOR",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "TraceDoc",
    "parse_schema_version",
    "write_trace",
    "read_trace",
    "merge_events",
]

TRACE_SCHEMA_MAJOR = 1
TRACE_SCHEMA_MINOR = 0
TRACE_SCHEMA_VERSION = f"{TRACE_SCHEMA_MAJOR}.{TRACE_SCHEMA_MINOR}"


class TraceSchemaError(Exception):
    """A trace file does not conform to the published schema."""


@dataclass
class TraceDoc:
    """A parsed trace: header metadata plus the ordered event stream."""

    meta: Dict[str, Any] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)
    dropped: int = 0
    schema_version: str = TRACE_SCHEMA_VERSION


def parse_schema_version(version: Any) -> Tuple[int, int]:
    """Split ``"<major>.<minor>"`` into ints; reject malformed strings."""
    if not isinstance(version, str):
        raise TraceSchemaError(
            f"schema_version: expected '<major>.<minor>' string, "
            f"got {type(version).__name__}")
    parts = version.split(".")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        raise TraceSchemaError(
            f"schema_version {version!r}: expected '<major>.<minor>'")
    return int(parts[0]), int(parts[1])


def write_trace(path: str, events: Sequence[TraceEvent],
                meta: Optional[Mapping[str, Any]] = None,
                dropped: int = 0) -> None:
    """Atomically write one trace file (tmp file + ``os.replace``)."""
    if dropped < 0:
        raise ValueError("dropped must be >= 0")
    header = {"record": "header", "schema_version": TRACE_SCHEMA_VERSION,
              "meta": dict(meta or {})}
    footer = {"record": "end", "events": len(events), "dropped": int(dropped)}
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_record(), sort_keys=True) + "\n")
        fh.write(json.dumps(footer, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _parse_line(line: str, lineno: int, path: str) -> Dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(
            f"{path}:{lineno}: not valid JSON ({exc})") from exc
    if not isinstance(record, dict) or not isinstance(record.get("record"), str):
        raise TraceSchemaError(
            f"{path}:{lineno}: expected an object with a 'record' kind")
    return record


def read_trace(path: str) -> TraceDoc:
    """Read and validate one trace file.

    Raises :class:`TraceSchemaError` for: a missing/malformed header, a
    schema major this build does not read, malformed event records, a
    missing ``end`` record (truncated write), or an ``end`` count that
    disagrees with the events actually present. Record kinds introduced by
    later minors of the same major are skipped, per the versioning
    contract.
    """
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    if not lines:
        raise TraceSchemaError(f"{path}: empty trace file")
    header = _parse_line(lines[0], 1, path)
    if header["record"] != "header":
        raise TraceSchemaError(
            f"{path}:1: first record must be the header, got "
            f"{header['record']!r}")
    major, minor = parse_schema_version(header.get("schema_version"))
    if major != TRACE_SCHEMA_MAJOR:
        raise TraceSchemaError(
            f"{path}: schema major {major} unsupported (this build reads "
            f"major {TRACE_SCHEMA_MAJOR}; minors are forward-compatible, "
            "majors are not)")
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise TraceSchemaError(f"{path}:1: header meta must be an object")

    events: List[TraceEvent] = []
    end: Optional[Dict[str, Any]] = None
    for lineno, line in enumerate(lines[1:], start=2):
        record = _parse_line(line, lineno, path)
        kind = record["record"]
        if end is not None:
            raise TraceSchemaError(
                f"{path}:{lineno}: record after the 'end' marker")
        if kind == "event":
            try:
                events.append(TraceEvent.from_record(record))
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: malformed event record ({exc})"
                ) from exc
        elif kind == "end":
            end = record
        elif kind == "header":
            raise TraceSchemaError(f"{path}:{lineno}: duplicate header")
        # Unknown kinds: skipped (a later minor of this major added them).
    if end is None:
        raise TraceSchemaError(
            f"{path}: no 'end' record — the trace was truncated mid-write")
    declared = end.get("events")
    if declared != len(events):
        raise TraceSchemaError(
            f"{path}: end record declares {declared} event(s) but "
            f"{len(events)} were read")
    dropped = end.get("dropped", 0)
    if not isinstance(dropped, int) or dropped < 0:
        raise TraceSchemaError(f"{path}: end.dropped must be a count")
    return TraceDoc(meta=dict(meta), events=events, dropped=dropped,
                    schema_version=f"{major}.{minor}")


def merge_events(streams: Sequence[Sequence[TraceEvent]]) -> List[TraceEvent]:
    """Merge per-process event streams into one ordered trace.

    Each stream is assumed internally ordered by emission (which ring
    buffers and in-memory tracers guarantee by construction). The merge
    sorts by start time with a **stable interleave**: events with equal
    ``t0`` keep stream order (lower stream index first) and, within one
    stream, emission order — so the merged trace is deterministic given the
    streams, and every stream's own ordering survives verbatim. Timestamps
    are comparable across processes wherever the platform's monotonic clock
    is system-wide (Linux; see :mod:`repro.obs.clock`).
    """
    decorated = [
        (event.t0, stream_index, seq, event)
        for stream_index, stream in enumerate(streams)
        for seq, event in enumerate(stream)
    ]
    decorated.sort(key=lambda item: (item[0], item[1], item[2]))
    return [event for _, _, _, event in decorated]
