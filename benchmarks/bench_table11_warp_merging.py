"""Table XI — effects of warp merging (WM).

Measures executed instructions and average active threads per warp of the GPU
kernel with and without warp merging, plus the modelled run time. Paper
anchors: 1.5x fewer executed instructions, average active threads 20.5 → 27.9,
1.1x speedup.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import GpuKernelConfig, OptimizedGpuEngine
from repro.gpusim import RTX_A6000


@pytest.mark.paper_table("Table XI")
def test_table11_warp_merging(benchmark, chr1_graph, bench_params):
    graph = chr1_graph
    params = bench_params

    def measure():
        out = {}
        for label, wm in (("w/o WM", False), ("w/ WM", True)):
            cfg = GpuKernelConfig(cache_friendly_layout=False,
                                  coalesced_random_states=False, warp_merging=wm)
            out[label] = OptimizedGpuEngine(graph, params, cfg).profile(
                device=RTX_A6000, n_sample_terms=2048)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    without, with_wm = results["w/o WM"], results["w/ WM"]

    rows = [
        ["Executed instructions (sample)", without.warp_stats.executed_instructions,
         with_wm.warp_stats.executed_instructions,
         f"{without.warp_stats.executed_instructions / with_wm.warp_stats.executed_instructions:.2f}x",
         "1.5x"],
        ["Avg. active threads / warp", f"{without.warp_stats.avg_active_threads:.1f}",
         f"{with_wm.warp_stats.avg_active_threads:.1f}",
         f"{with_wm.warp_stats.avg_active_threads / without.warp_stats.avg_active_threads:.2f}x",
         "1.4x (20.5 -> 27.9)"],
        ["GPU run time (model, s)", f"{without.runtime_s:.3g}", f"{with_wm.runtime_s:.3g}",
         f"{without.runtime_s / with_wm.runtime_s:.2f}x", "1.1x"],
    ]

    # Paper-shape assertions.
    assert with_wm.warp_stats.avg_active_threads > without.warp_stats.avg_active_threads
    assert without.warp_stats.avg_active_threads < 30.0
    assert with_wm.warp_stats.avg_active_threads > 30.0
    assert with_wm.warp_stats.executed_instructions < without.warp_stats.executed_instructions
    assert with_wm.runtime_s < without.runtime_s
    assert 1.02 < without.runtime_s / with_wm.runtime_s < 1.6

    print()
    print(format_table(
        ["Metric", "w/o WM", "w/ WM", "Improvement", "Paper"],
        rows,
        title="Table XI: effects of warp merging (Chr.1-like)",
    ))
