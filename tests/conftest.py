"""Shared fixtures: small graphs and fast layout parameters."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import LayoutParams
from repro.graph import LeanGraph, figure1_example
from repro.synth import PangenomeConfig, simulate_pangenome


@pytest.fixture(scope="session")
def fig1_graph():
    """The paper's Fig. 1 toy variation graph (full representation)."""
    return figure1_example()


@pytest.fixture(scope="session")
def fig1_lean(fig1_graph):
    """Lean form of the Fig. 1 graph."""
    return LeanGraph.from_variation_graph(fig1_graph)


@pytest.fixture(scope="session")
def tiny_graph():
    """A two-path, hand-built lean graph with known positions."""
    # node lengths: 0..4 -> 3,1,2,5,4
    return LeanGraph.from_paths(
        node_lengths=[3, 1, 2, 5, 4],
        paths=[[0, 1, 2, 3, 4], [0, 2, 4]],
        path_names=["alpha", "beta"],
    )


@pytest.fixture(scope="session")
def small_synthetic():
    """A small but non-trivial synthetic pangenome (deterministic)."""
    cfg = PangenomeConfig(
        n_backbone_nodes=300,
        n_paths=8,
        mean_node_length=6.0,
        bubble_rate=0.1,
        deletion_rate=0.03,
        n_structural_variants=1,
        sv_length_nodes=12,
        loop_rate=0.2,
        seed=7,
        name="test",
    )
    return simulate_pangenome(cfg)


@pytest.fixture(scope="session")
def medium_synthetic():
    """A slightly larger synthetic pangenome for engine/metric tests."""
    cfg = PangenomeConfig(
        n_backbone_nodes=900,
        n_paths=10,
        mean_node_length=8.0,
        bubble_rate=0.08,
        deletion_rate=0.02,
        n_structural_variants=2,
        sv_length_nodes=20,
        loop_rate=0.1,
        seed=21,
        name="medium",
    )
    return simulate_pangenome(cfg)


@pytest.fixture(scope="session")
def fast_params():
    """Layout parameters small enough for unit tests."""
    return LayoutParams(iter_max=6, steps_per_step_unit=1.0, seed=123)


@pytest.fixture(scope="session")
def quality_params():
    """Parameters strong enough to reach a converged layout on small graphs."""
    return LayoutParams(iter_max=20, steps_per_step_unit=3.0, seed=123)


@pytest.fixture()
def rng():
    """Fresh NumPy generator per test."""
    return np.random.default_rng(1234)
