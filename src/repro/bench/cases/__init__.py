"""Built-in benchmark cases (one module per paper figure/table + CI smoke).

Importing this package registers every case with the global registry.
``benchmarks/bench_*.py`` keep thin pytest shims over these modules, so the
same case bodies back three entry points: ``repro bench run``, ``pytest
benchmarks/`` and ``python benchmarks/bench_<name>.py``.
"""
from __future__ import annotations

from . import (  # noqa: F401  (imports register the cases)
    fig04_cpu_scaling,
    fig05_bottleneck,
    fig07_kernel_breakdown,
    fig12_quality_levels,
    fig13_correlation,
    fig15_scalability,
    fig16_ablation_ladder,
    fig17_data_reuse_dse,
    perf_fused,
    perf_hotpath,
    perf_multilevel,
    perf_parallel,
    perf_supervised,
    perf_trace,
    scale_chunked,
    smoke,
    table01_graph_properties,
    table02_cache_profile,
    table03_batch_sweep,
    table04_kernel_launches,
    table05_metric_runtime,
    table06_dataset_properties,
    table07_speedup,
    table08_quality,
    table09_cdl,
    table10_crs,
    table11_warp_merging,
)
