"""End-to-end performance model: one call per (graph, device, kernel config).

This is the glue the central-evaluation benchmarks (Tables VII, Fig. 15,
Fig. 16) use: it runs the counter-collection machinery (CPU cache profile for
the baseline, GPU kernel profile for each configuration) on a graph and
returns modelled run times for the 32-thread CPU baseline, the RTX A6000 and
the A100, together with the derived speedups.

Absolute times are model outputs, not hardware measurements (see DESIGN.md);
the quantities compared against the paper are the speedup ratios and their
ordering across optimisation stages and devices.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.gpu_kernel import GpuKernelConfig, OptimizedGpuEngine
from ..core.params import LayoutParams
from ..gpusim.device import A100, DeviceSpec, RTX_A6000, XEON_6246R
from ..gpusim.profiler import WorkloadCounters
from ..gpusim.timing import TimingBreakdown, cpu_runtime
from ..graph.lean import LeanGraph
from ..parallel.scaling import cpu_cache_profile

__all__ = ["GraphPerformanceReport", "evaluate_graph_performance", "ablation_ladder"]


@dataclass
class GraphPerformanceReport:
    """Modelled run times and speedups for one graph."""

    graph_name: str
    total_terms: float
    cpu: TimingBreakdown
    gpu: Dict[str, TimingBreakdown] = field(default_factory=dict)

    def speedup(self, device_name: str) -> float:
        """CPU time divided by the named GPU device's time."""
        return self.cpu.total_s / self.gpu[device_name].total_s

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for table assembly."""
        row: Dict[str, float] = {
            "graph": self.graph_name,
            "cpu_s": self.cpu.total_s,
            "total_terms": self.total_terms,
        }
        for name, timing in self.gpu.items():
            row[f"{name}_s"] = timing.total_s
            row[f"{name}_speedup"] = self.cpu.total_s / timing.total_s
        return row


def evaluate_graph_performance(
    graph: LeanGraph,
    graph_name: str = "graph",
    params: Optional[LayoutParams] = None,
    gpu_config: Optional[GpuKernelConfig] = None,
    devices: Optional[Dict[str, DeviceSpec]] = None,
    cpu_device: DeviceSpec = XEON_6246R,
    n_trace_terms: int = 2048,
    cpu_threads: int = 32,
    seed: int = 0,
) -> GraphPerformanceReport:
    """Model CPU-baseline and GPU run times for one graph."""
    params = params or LayoutParams()
    gpu_config = gpu_config or GpuKernelConfig()
    devices = devices or {"A6000": RTX_A6000, "A100": A100}

    # CPU baseline: cache profile -> latency-bound model.
    sample_traffic, traced = cpu_cache_profile(
        graph, params, cpu_device, n_trace_terms=n_trace_terms, seed=seed
    )
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))
    cpu_traffic = sample_traffic.scaled(total_terms / traced)
    cpu_time = cpu_runtime(
        cpu_device, total_terms, cpu_traffic, WorkloadCounters(), n_threads=cpu_threads
    )

    # GPU: profile the optimized kernel per device.
    gpu_times: Dict[str, TimingBreakdown] = {}
    for name, device in devices.items():
        engine = OptimizedGpuEngine(graph, params, gpu_config)
        profile = engine.profile(device=device, n_sample_terms=n_trace_terms, seed=seed)
        gpu_times[name] = profile.timing
    return GraphPerformanceReport(
        graph_name=graph_name,
        total_terms=total_terms,
        cpu=cpu_time,
        gpu=gpu_times,
    )


def ablation_ladder(
    graph: LeanGraph,
    params: Optional[LayoutParams] = None,
    device: DeviceSpec = RTX_A6000,
    n_trace_terms: int = 2048,
    cpu_threads: int = 32,
    seed: int = 0,
) -> Dict[str, float]:
    """Modelled run times of the successive-optimisation ladder (Fig. 16).

    Returns run times (seconds) keyed by stage:
    ``cpu-baseline``, ``cpu+cdl``, ``gpu-base``, ``gpu+cdl``, ``gpu+cdl+crs``,
    ``gpu+cdl+crs+wm`` (the fully optimized kernel).
    """
    params = params or LayoutParams()
    from ..core.layout import NodeDataLayout  # local import to keep module load light

    results: Dict[str, float] = {}
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))

    # CPU baseline with and without the cache-friendly data layout.
    for label, layout_kind in (("cpu-baseline", NodeDataLayout.SOA), ("cpu+cdl", NodeDataLayout.AOS)):
        traffic_sample, traced = cpu_cache_profile(
            graph, params, XEON_6246R, n_trace_terms=n_trace_terms, seed=seed,
            data_layout=layout_kind,
        )
        traffic = traffic_sample.scaled(total_terms / traced)
        results[label] = cpu_runtime(
            XEON_6246R, total_terms, traffic, WorkloadCounters(), n_threads=cpu_threads
        ).total_s

    # GPU ladder.
    stages = {
        "gpu-base": GpuKernelConfig.baseline(),
        "gpu+cdl": GpuKernelConfig(cache_friendly_layout=True, coalesced_random_states=False,
                                   warp_merging=False),
        "gpu+cdl+crs": GpuKernelConfig(cache_friendly_layout=True, coalesced_random_states=True,
                                       warp_merging=False),
        "gpu+cdl+crs+wm": GpuKernelConfig(),
    }
    for label, cfg in stages.items():
        engine = OptimizedGpuEngine(graph, params, cfg)
        profile = engine.profile(device=device, n_sample_terms=n_trace_terms, seed=seed)
        results[label] = profile.timing.total_s
    return results
