"""Fig. 13 — correlation between sampled path stress and exact path stress.

Evaluates both metrics on a collection of small pangenome layouts spanning a
wide quality range (the paper uses 1824 small layouts and reports a Pearson
correlation of 0.995) and asserts a near-perfect linear correlation.
"""
from __future__ import annotations

import numpy as np

from ...core import CpuBaselineEngine, LayoutParams, initialize_layout
from ...core.layout import Layout
from ...metrics import correlation_study, path_stress, sampled_path_stress
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("fig13_correlation", source="Fig. 13", suites=("figures",))
def run(ctx) -> CaseResult:
    """Sampled path stress tracks the exact metric near-linearly."""
    graphs = ctx.small_graphs(18, seed=5)
    rng = ctx.rng("fig13/random-layouts")
    base_seed = ctx.seed_for("fig13/per-graph")

    pairs = []
    for i, graph in enumerate(graphs):
        # Vary the layout quality: random, initial, or partially optimised.
        mode = i % 3
        if mode == 0:
            layout = Layout(rng.uniform(0, 300.0, size=(2 * graph.n_nodes, 2)))
        elif mode == 1:
            layout = initialize_layout(graph, seed=base_seed + i)
        else:
            params = LayoutParams(iter_max=4, steps_per_step_unit=1.0, seed=base_seed + i)
            layout = CpuBaselineEngine(graph, params).run().layout
        exact = path_stress(layout, graph, max_pairs=3_000_000)
        sampled = sampled_path_stress(layout, graph, samples_per_step=60,
                                      seed=base_seed + i).value
        pairs.append((exact, sampled))

    corr = correlation_study(pairs)
    log_corr = correlation_study([(np.log10(max(a, 1e-9)), np.log10(max(b, 1e-9)))
                                  for a, b in pairs])

    rows = [[f"{a:.4g}", f"{b:.4g}", f"{b / max(a, 1e-12):.2f}"] for a, b in pairs]
    # Paper: correlation 0.995 across 1824 layouts. Require a near-perfect
    # linear relationship on this smaller collection.
    assert corr > 0.97
    assert log_corr > 0.95

    out = CaseResult()
    out.add("pearson_correlation", corr, direction="higher")
    out.add("loglog_correlation", log_corr, direction="higher")
    out.add("n_layouts", len(pairs), direction="info")
    out.tables.append(format_table(
        ["Path stress", "Sampled path stress", "ratio"],
        rows,
        title=f"Fig. 13: sampled vs exact path stress over {len(pairs)} layouts "
              f"(correlation = {corr:.3f}, log-log = {log_corr:.3f}; paper: 0.995)",
    ))
    return out
