"""V-cycle multilevel layout driver.

``MultilevelDriver`` composes the coarsener, any flat layout engine and the
prolongation operator into a coarse-to-fine optimisation: build the chain-
contraction hierarchy, lay out the coarsest graph first (where each
iteration costs a fraction of a fine-level one because N_steps scales with
Σ|p|), then repeatedly lift the result one level down and continue
optimising. The levels share **one** global ``make_schedule`` annealing
sweep, computed over the finest graph and sliced contiguously across the
hierarchy — the coarsest level takes the hot ``η_max`` iterations (cheap
untangling), the finest the cool refinement tail. Re-annealing each level
from ``η_max`` would destroy the structure prolongation just inherited;
slicing is what makes the V-cycle strictly cheaper than a flat run at equal
quality. Contraction preserves nucleotide distances, so the fine schedule's
``d_min``/``d_max`` bounds describe every level's coordinate system.

Determinism contract: the hierarchy is a pure function of the input graph;
per-level engine seeds and prolongation jitter derive from the master
``params.seed`` via SplitMix64 with stable string labels; and a driver whose
hierarchy is flat (``levels=1``, or a graph that does not contract) delegates
to the wrapped engine untouched — byte-identical to a flat run.
"""
from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.base import IterationRecord, LayoutResult, ProgressCallback
from ..core.layout import Layout
from ..core.params import LayoutParams
from ..graph.lean import LeanGraph
from ..obs import clock as obs_clock
from ..obs.metrics import MetricsRegistry
from ..obs.trace_file import write_trace
from ..obs.tracer import NULL_TRACER, Tracer
from ..prng.splitmix import derive_seed
from .coarsen import Hierarchy, build_hierarchy
from .prolong import prolongate, restrict

__all__ = ["MultilevelDriver", "split_iterations"]

#: Magnitude of the symmetry-breaking prolongation jitter, matching the
#: Gaussian y-jitter scale of ``initialize_layout`` (nucleotide units).
_PROLONG_JITTER = 1.0


def split_iterations(total: int, depth: int, split: float) -> List[int]:
    """Split ``total`` iterations across ``depth`` levels, finest first.

    At every level boundary the coarser part of the hierarchy collectively
    receives a ``split`` fraction of the remaining budget (rounded), the
    current level the rest; every level gets at least one iteration, so for
    ``total < depth`` the overall budget grows to ``depth``.
    """
    if total < 1:
        raise ValueError("total iterations must be >= 1")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if not 0.0 < split < 1.0:
        raise ValueError("split must lie strictly between 0 and 1")
    out: List[int] = []
    budget = total
    for index in range(depth - 1):
        coarser_levels = depth - 1 - index
        coarser = min(max(int(round(budget * split)), coarser_levels),
                      max(budget - 1, coarser_levels))
        out.append(max(budget - coarser, 1))
        budget = coarser
    out.append(max(budget, 1))
    return out


def _offset_progress(callback: ProgressCallback, offset: int,
                     grand_total: int, level: int) -> ProgressCallback:
    """Wrap a progress hook to report hierarchy-global completion counts."""
    def hook(completed: int, total: int, stats) -> None:
        callback(offset + completed, grand_total, dict(stats, level=level))
    return hook


class MultilevelDriver:
    """Coarse-to-fine layout over a chain-contraction hierarchy.

    Exposes the same ``run(initial=None) -> LayoutResult`` surface as the
    flat :class:`~repro.core.base.LayoutEngine` family and works with every
    registered engine kind, backend and merge policy — the per-level engines
    are constructed through :func:`repro.core.api.make_engine` from the
    driver's own params. ``params.fused`` rides along unchanged, so every
    level of the V-cycle takes the fused per-iteration path under the same
    auto/force rules as a flat run (byte-identical layouts on NumPy either
    way, fused or not).
    """

    name = "multilevel"

    def __init__(
        self,
        graph: LeanGraph,
        params: Optional[LayoutParams] = None,
        engine: str = "cpu",
        gpu_config=None,
    ):
        self.graph = graph
        self.params = params if params is not None else LayoutParams()
        self.engine_kind = engine
        self.gpu_config = gpu_config
        self.hierarchy: Hierarchy = build_hierarchy(
            graph, self.params.levels, self.params.coarsen_min_nodes)
        # Observability (repro.obs): one tracer and one metrics registry for
        # the whole V-cycle — level engines get ``level=k``-labelled views
        # of the driver's tracer, so every level's spans land in a single
        # ordered stream and the driver alone writes the trace file.
        self.tracer: Tracer = (Tracer(labels={"engine": self.name})
                               if self.params.trace else NULL_TRACER)
        self.metrics = MetricsRegistry(labels={"engine": self.name})
        self.on_progress: Optional[ProgressCallback] = None

    # -------------------------------------------------------------- helpers
    def _make_level_engine(self, level_graph: LeanGraph, level: int,
                           eta_slice: np.ndarray):
        from ..core.api import make_engine  # runtime import: core must not
        # import multilevel at module scope, so the dependency points one way.

        level_params = self.params.with_(
            iter_max=int(eta_slice.size),
            seed=derive_seed(self.params.seed, f"multilevel/level{level}"),
            # The driver owns the run's one trace file; a level engine must
            # never write its own. Its spans still flow into the shared
            # stream through the bound tracer installed below.
            trace=None,
        )
        engine = make_engine(level_graph, self.engine_kind, level_params,
                             self.gpu_config)
        # The engine computed a full annealing sweep for its own graph;
        # replace it with this level's slice of the shared global schedule.
        engine.schedule = np.asarray(eta_slice, dtype=np.float64)
        engine.tracer = self.tracer.bind(level=str(level))
        return engine

    def level_iterations(self) -> List[int]:
        """Per-level iteration budget (finest first) for this hierarchy."""
        return split_iterations(self.params.iter_max, self.hierarchy.depth,
                                self.params.level_iter_split)

    def level_schedules(self) -> List[np.ndarray]:
        """Per-level η slices (finest first) of the global annealing sweep.

        The global schedule is ``make_schedule`` over the finest graph with
        the summed per-level budget; the coarsest level owns its leading
        (hottest) slice and the finest level the trailing (coolest) one.
        """
        from ..core.schedule import make_schedule

        iters = self.level_iterations()
        schedule = make_schedule(self.graph,
                                 self.params.with_(iter_max=sum(iters)))
        slices: List[np.ndarray] = []
        consumed = 0
        for level_iters in reversed(iters):  # coarsest first
            slices.append(schedule[consumed:consumed + level_iters])
            consumed += level_iters
        slices.reverse()  # finest first, aligned with level_iterations()
        return slices

    # ------------------------------------------------------------------ run
    def run(self, initial: Optional[Layout] = None) -> LayoutResult:
        """Execute the V-cycle and return the finest-level result."""
        from ..core.api import make_engine

        hierarchy = self.hierarchy
        if hierarchy.depth == 1:
            # Flat hierarchy: delegate untouched (the levels=1 byte-identity
            # contract — same engine, same params, same seed, same draws).
            # The engine owns the trace file here: params.trace passes
            # through, so the delegation is observably a flat run too.
            return make_engine(self.graph, self.engine_kind, self.params,
                               self.gpu_config,
                               on_progress=self.on_progress).run(initial)

        t_start = obs_clock.perf_counter()
        tracer = self.tracer
        trace = tracer.enabled
        schedules = self.level_schedules()
        # Restrict an explicit initial layout down to the coarsest level;
        # with the default initialisation every level seeds itself.
        level_initial: Optional[Layout] = initial
        restricted: List[Optional[Layout]] = [level_initial]
        if initial is not None:
            for lv in hierarchy.levels:
                level_initial = restrict(level_initial, lv)
                restricted.append(level_initial)
        else:
            restricted.extend([None] * len(hierarchy.levels))

        history: List[IterationRecord] = []
        counters = {"multilevel_depth": float(hierarchy.depth)}
        self.metrics.gauge("multilevel_depth").set(float(hierarchy.depth))
        total_terms = 0
        total_iterations = 0
        # Global progress: level runs report completed iterations offset by
        # the levels already finished, against the hierarchy-wide total —
        # one monotonic 1..grand_total sweep, coarsest level first.
        grand_total = sum(self.level_iterations())
        current: Optional[Layout] = restricted[-1]
        for level in range(hierarchy.depth - 1, -1, -1):
            engine = self._make_level_engine(hierarchy.graphs[level], level,
                                             schedules[level])
            if self.on_progress is not None:
                engine.on_progress = _offset_progress(
                    self.on_progress, total_iterations, grand_total, level)
            t_level = tracer.now() if trace else 0.0
            result = engine.run(initial=current)
            if trace:
                tracer.emit("level", t_level, tracer.now() - t_level,
                            count=result.iterations)
            total_terms += result.total_terms
            for record in result.history:
                history.append(IterationRecord(
                    iteration=total_iterations + record.iteration,
                    eta=record.eta,
                    sampled_stress=record.sampled_stress,
                    n_terms=record.n_terms,
                    n_collisions=record.n_collisions,
                ))
            total_iterations += result.iterations
            counters[f"level{level}_nodes"] = float(hierarchy.graphs[level].n_nodes)
            counters[f"level{level}_terms"] = float(result.total_terms)
            counters[f"level{level}_iterations"] = float(result.iterations)
            # The same per-level figures as labelled gauges: one metric name
            # per quantity, the level in the label — the registry-native
            # shape of the historical ``level{k}_*`` counter keys above.
            lvl = str(level)
            self.metrics.gauge("level_nodes", level=lvl).set(
                float(hierarchy.graphs[level].n_nodes))
            self.metrics.gauge("level_terms", level=lvl).set(
                float(result.total_terms))
            self.metrics.gauge("level_iterations", level=lvl).set(
                float(result.iterations))
            # High-water counters carry max semantics across levels: the
            # hierarchy's peak is its worst level, not the sum of levels.
            for peak_key in ("peak_rss_bytes", "traced_peak_bytes", "fused_chunks"):
                if peak_key in result.counters:
                    counters[peak_key] = max(counters.get(peak_key, 0.0),
                                             float(result.counters[peak_key]))
                    self.metrics.gauge(peak_key).record_max(
                        float(result.counters[peak_key]))
            current = result.layout
            if level > 0:
                t_pro = tracer.now() if trace else 0.0
                current = prolongate(
                    current,
                    hierarchy.levels[level - 1],
                    jitter=_PROLONG_JITTER,
                    seed=derive_seed(self.params.seed,
                                     f"multilevel/prolong{level - 1}"),
                    data_layout=current.data_layout,
                )
                if trace:
                    tracer.bind(level=str(level - 1)).emit(
                        "prolong", t_pro, tracer.now() - t_pro)
        if self.params.trace:
            write_trace(self.params.trace, tracer.events, meta={
                "engine": f"{self.name}[{self.engine_kind}]",
                "iterations": total_iterations,
                "levels": hierarchy.depth,
            })
        return LayoutResult(
            layout=current,
            params=self.params,
            engine=f"{self.name}[{self.engine_kind}]",
            iterations=total_iterations,
            total_terms=total_terms,
            history=history,
            counters=counters,
            wall_time_s=obs_clock.perf_counter() - t_start,
            metrics=self.metrics.snapshot(),
        )
