"""Tests for the multilevel subsystem: coarsener, transfer operators, driver.

Hypothesis-based property tests of the coarsening invariants live in
``tests/test_multilevel_properties.py`` (optional dependency, like
``test_update_properties.py``); this module is the always-on tier-1 coverage:
hand-built graphs with known contraction structure, the iteration/eta split,
determinism, the ``levels=1`` flat-delegation contract and the CLI wiring.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core import LayoutParams, initialize_layout, make_engine
from repro.core.layout import Layout
from repro.core.schedule import make_schedule
from repro.graph import LeanGraph
from repro.multilevel import (
    MultilevelDriver,
    build_hierarchy,
    chain_merge_links,
    coarsen_graph,
    prolongate,
    restrict,
    split_iterations,
)

FAST = LayoutParams(iter_max=4, steps_per_step_unit=1.0, seed=11)


def linear_graph(k: int, n_paths: int = 2) -> LeanGraph:
    """k nodes in a chain, every path traversing all of them forward."""
    return LeanGraph.from_paths(
        node_lengths=list(range(1, k + 1)),
        paths=[list(range(k))] * n_paths,
    )


def bubble_graph() -> LeanGraph:
    """Two paths diverging through a bubble: nothing is contractible."""
    return LeanGraph.from_paths(
        node_lengths=[3, 1, 2, 4],
        paths=[[0, 1, 3], [0, 2, 3]],
    )


class TestChainMergeLinks:
    def test_linear_chain_fully_linked(self):
        links = chain_merge_links(linear_graph(5))
        assert links.tolist() == [1, 2, 3, 4, -1]

    def test_bubble_breaks_links(self):
        assert chain_merge_links(bubble_graph()).tolist() == [-1] * 4

    def test_divergent_successor_breaks_link(self):
        g = LeanGraph.from_paths(node_lengths=[1, 1, 1],
                                 paths=[[0, 1], [0, 2]])
        assert chain_merge_links(g)[0] == -1

    def test_path_terminal_occurrence_breaks_link(self):
        # Node 1 ends path 1, so it cannot merge forward into node 2.
        g = LeanGraph.from_paths(node_lengths=[1, 1, 1],
                                 paths=[[0, 1, 2], [0, 1]])
        links = chain_merge_links(g)
        assert links[0] == 1  # 0 -> 1 still merges (1's preds are all 0)
        assert links[1] == -1

    def test_reverse_step_blocks_merge(self):
        g = LeanGraph.from_paths(
            node_lengths=[1, 1, 1],
            paths=[[0, 1, 2]],
            orientations=[[False, True, False]],
        )
        links = chain_merge_links(g)
        assert links[0] == -1 and links[1] == -1

    def test_loop_repeat_merges_span(self):
        # Path x,y,x,y: every x is followed by y, every y preceded by x, but
        # y ends the path once -> only x->y links.
        g = LeanGraph.from_paths(node_lengths=[2, 3], paths=[[0, 1, 0, 1]])
        assert chain_merge_links(g).tolist() == [1, -1]

    def test_pathless_nodes_unlinked(self):
        g = LeanGraph.from_paths(node_lengths=[1, 1, 1], paths=[[0, 1]])
        assert chain_merge_links(g)[2] == -1


class TestCoarsenGraph:
    def test_linear_graph_contracts_to_one_node(self):
        g = linear_graph(6)
        level = coarsen_graph(g)
        assert level.n_coarse == 1
        assert level.coarse.node_lengths.tolist() == [g.node_lengths.sum()]
        assert level.projection.tolist() == [0] * 6
        assert level.member_offset.tolist() == [0, 1, 3, 6, 10, 15]
        assert level.coarse.total_steps == g.n_paths

    def test_bubble_graph_is_fixpoint(self):
        level = coarsen_graph(bubble_graph())
        assert level.n_coarse == level.fine.n_nodes

    def test_loop_coarse_path_preserves_traversals(self):
        g = LeanGraph.from_paths(node_lengths=[2, 3], paths=[[0, 1, 0, 1]])
        level = coarsen_graph(g)
        assert level.n_coarse == 1
        assert level.coarse.step_nodes.tolist() == [0, 0]
        assert level.coarse.step_positions.tolist() == [0, 5]
        assert level.coarse.path_nucleotide_length(0) == g.path_nucleotide_length(0)

    def test_max_chain_splits_runs(self):
        g = linear_graph(5)
        level = coarsen_graph(g, max_chain=2)
        assert level.chain_sizes().tolist() == [2, 2, 1]
        # Split chains stay contiguous: member offsets restart per chain.
        assert level.member_offset.tolist() == [0, 1, 0, 3, 0]

    def test_nucleotide_lengths_preserved_per_path(self, small_synthetic):
        level = coarsen_graph(small_synthetic)
        assert level.coarse.n_nodes < small_synthetic.n_nodes
        assert level.coarse.total_sequence_length == small_synthetic.total_sequence_length
        for p in range(small_synthetic.n_paths):
            assert (level.coarse.path_nucleotide_length(p)
                    == small_synthetic.path_nucleotide_length(p))

    def test_expanding_coarse_steps_reproduces_fine_sequence(self, small_synthetic):
        level = coarsen_graph(small_synthetic)
        co, cm = level.chain_offsets, level.chain_members
        for p in range(small_synthetic.n_paths):
            fine_steps = small_synthetic.step_nodes[small_synthetic.path_steps(p)]
            coarse_steps = level.coarse.step_nodes[level.coarse.path_steps(p)]
            expanded = np.concatenate(
                [cm[co[c]:co[c + 1]] for c in coarse_steps]) if coarse_steps.size \
                else np.empty(0, dtype=np.int64)
            np.testing.assert_array_equal(expanded, fine_steps)

    def test_deterministic(self, small_synthetic):
        a = coarsen_graph(small_synthetic)
        b = coarsen_graph(small_synthetic)
        np.testing.assert_array_equal(a.projection, b.projection)
        np.testing.assert_array_equal(a.chain_members, b.chain_members)
        np.testing.assert_array_equal(a.coarse.step_nodes, b.coarse.step_nodes)


class TestHierarchy:
    def test_levels_one_is_flat(self, small_synthetic):
        h = build_hierarchy(small_synthetic, 1)
        assert h.depth == 1 and not h.levels

    def test_depth_bounded_and_shrinking(self, small_synthetic):
        h = build_hierarchy(small_synthetic, 4, min_nodes=8)
        assert h.depth <= 4
        counts = h.node_counts()
        assert all(a > b for a, b in zip(counts, counts[1:]))

    def test_stops_at_fixpoint(self):
        h = build_hierarchy(bubble_graph(), 5, min_nodes=1)
        assert h.depth == 1

    def test_min_nodes_stops_coarsening(self, small_synthetic):
        h = build_hierarchy(small_synthetic, 4,
                            min_nodes=small_synthetic.n_nodes)
        assert h.depth == 1

    def test_validation(self, small_synthetic):
        with pytest.raises(ValueError):
            build_hierarchy(small_synthetic, 0)
        with pytest.raises(ValueError):
            build_hierarchy(small_synthetic, 2, min_nodes=0)


class TestTransferOperators:
    def test_prolongate_places_members_by_offset(self):
        g = linear_graph(3)  # lengths 1,2,3 -> one chain of length 6
        level = coarsen_graph(g)
        coarse = Layout(np.array([[0.0, 0.0], [6.0, 0.0]]))
        fine = prolongate(coarse, level)
        # Members occupy [0,1], [1,3], [3,6] of the 6-long segment.
        np.testing.assert_allclose(fine.coords[0::2, 0], [0.0, 1.0, 3.0])
        np.testing.assert_allclose(fine.coords[1::2, 0], [1.0, 3.0, 6.0])
        np.testing.assert_allclose(fine.coords[:, 1], 0.0)

    def test_restrict_prolongate_round_trip(self, small_synthetic):
        level = coarsen_graph(small_synthetic)
        coarse = initialize_layout(level.coarse, seed=3)
        back = restrict(prolongate(coarse, level), level)
        np.testing.assert_allclose(back.coords, coarse.coords, atol=1e-9)

    def test_prolongate_touches_every_node(self, small_synthetic):
        level = coarsen_graph(small_synthetic)
        coarse = initialize_layout(level.coarse, seed=5)
        fine = prolongate(coarse, level, jitter=0.5, seed=9)
        assert fine.n_nodes == small_synthetic.n_nodes
        assert np.isfinite(fine.coords).all()

    def test_jitter_deterministic_and_seeded(self, small_synthetic):
        level = coarsen_graph(small_synthetic)
        coarse = initialize_layout(level.coarse, seed=5)
        a = prolongate(coarse, level, jitter=0.5, seed=9)
        b = prolongate(coarse, level, jitter=0.5, seed=9)
        c = prolongate(coarse, level, jitter=0.5, seed=10)
        np.testing.assert_array_equal(a.coords, b.coords)
        assert not np.array_equal(a.coords, c.coords)

    def test_jitter_skips_singleton_chains(self):
        g = bubble_graph()
        level = coarsen_graph(g)  # all chains are singletons
        coarse = initialize_layout(level.coarse, seed=1)
        fine = prolongate(coarse, level, jitter=10.0, seed=2)
        np.testing.assert_array_equal(fine.coords, coarse.coords)

    def test_zero_length_chain_spaced_by_rank(self):
        g = LeanGraph.from_paths(node_lengths=[0, 0], paths=[[0, 1], [0, 1]])
        level = coarsen_graph(g)
        assert level.n_coarse == 1
        coarse = Layout(np.array([[2.0, 3.0], [10.0, 7.0]]))
        fine = prolongate(coarse, level)
        # Rank fallback: the two members split the segment at its midpoint.
        np.testing.assert_allclose(
            fine.coords,
            [[2.0, 3.0], [6.0, 5.0], [6.0, 5.0], [10.0, 7.0]])

    def test_shape_mismatch_rejected(self, small_synthetic):
        level = coarsen_graph(small_synthetic)
        wrong = Layout(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            prolongate(wrong, level)
        with pytest.raises(ValueError):
            restrict(wrong, level)


class TestSplitIterations:
    def test_sums_to_total(self):
        assert sum(split_iterations(30, 3, 0.5)) == 30
        assert split_iterations(30, 1, 0.5) == [30]

    def test_each_level_gets_at_least_one(self):
        assert split_iterations(2, 4, 0.5) == [1, 1, 1, 1]

    def test_split_shifts_budget_coarse(self):
        fine_heavy = split_iterations(20, 3, 0.25)
        coarse_heavy = split_iterations(20, 3, 0.75)
        assert fine_heavy[0] > coarse_heavy[0]

    def test_validation(self):
        for bad in ((0, 2, 0.5), (10, 0, 0.5), (10, 2, 0.0), (10, 2, 1.0)):
            with pytest.raises(ValueError):
                split_iterations(*bad)


class TestMultilevelDriver:
    def test_levels1_byte_identical_to_flat(self, small_synthetic):
        flat = make_engine(small_synthetic, "cpu", FAST).run()
        multi = MultilevelDriver(small_synthetic, FAST, engine="cpu").run()
        np.testing.assert_array_equal(multi.layout.coords, flat.layout.coords)
        assert multi.total_terms == flat.total_terms

    def test_uncoarsenable_graph_delegates_flat(self):
        g = bubble_graph()
        flat = make_engine(g, "cpu", FAST).run()
        multi = MultilevelDriver(g, FAST.with_(levels=3), engine="cpu").run()
        np.testing.assert_array_equal(multi.layout.coords, flat.layout.coords)

    def test_vcycle_runs_and_is_deterministic(self, small_synthetic):
        params = FAST.with_(levels=3)
        a = MultilevelDriver(small_synthetic, params, engine="batch").run()
        b = MultilevelDriver(small_synthetic, params, engine="batch").run()
        assert a.layout.n_nodes == small_synthetic.n_nodes
        assert np.isfinite(a.layout.coords).all()
        np.testing.assert_array_equal(a.layout.coords, b.layout.coords)
        assert a.engine == "multilevel[batch]"
        assert a.counters["multilevel_depth"] >= 2

    def test_vcycle_cheaper_than_flat(self, small_synthetic):
        flat = make_engine(small_synthetic, "cpu", FAST).run()
        multi = MultilevelDriver(small_synthetic, FAST.with_(levels=3),
                                 engine="cpu").run()
        assert 0 < multi.total_terms < flat.total_terms

    def test_explicit_initial_is_restricted(self, small_synthetic):
        rng = np.random.default_rng(0)
        scram = Layout(rng.uniform(0, 10, (2 * small_synthetic.n_nodes, 2)))
        result = MultilevelDriver(small_synthetic, FAST.with_(levels=2),
                                  engine="cpu").run(initial=scram)
        assert result.layout.n_nodes == small_synthetic.n_nodes
        assert np.isfinite(result.layout.coords).all()

    def test_level_schedules_slice_global_sweep(self, small_synthetic):
        driver = MultilevelDriver(small_synthetic, FAST.with_(levels=3,
                                                              iter_max=9))
        iters = driver.level_iterations()
        slices = driver.level_schedules()
        assert [s.size for s in slices] == iters
        joined = np.concatenate(list(reversed(slices)))  # coarsest first
        expected = make_schedule(small_synthetic,
                                 FAST.with_(iter_max=sum(iters)))
        np.testing.assert_array_equal(joined, expected)
        # Coarse levels take the hot etas, the finest the cool tail.
        assert slices[-1][0] >= slices[0][-1]

    def test_history_concatenated_across_levels(self, small_synthetic):
        params = FAST.with_(levels=2, record_history=True)
        result = MultilevelDriver(small_synthetic, params, engine="cpu").run()
        assert len(result.history) == result.iterations
        assert [r.iteration for r in result.history] == list(range(result.iterations))


class TestMultilevelCli:
    def test_layout_levels_flag(self, capsys):
        code = main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                     "--iter-max", "3", "--steps-factor", "1.0",
                     "--levels", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "levels=3" in out
        assert "layout complete" in out

    def test_params_validation(self):
        with pytest.raises(ValueError):
            LayoutParams(levels=0)
        with pytest.raises(ValueError):
            LayoutParams(coarsen_min_nodes=0)
        with pytest.raises(ValueError):
            LayoutParams(level_iter_split=1.0)
