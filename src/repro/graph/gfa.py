"""GFA v1 parsing and serialisation.

The HPRC pangenomes evaluated in the paper are distributed as GFA files and
converted to ODGI's binary format before layout. This module implements the
subset of GFA v1 that variation graphs use:

* ``H`` header lines (version tag),
* ``S`` segment lines (``S <name> <sequence>``), optionally with ``LN:i:``
  length tags in place of an explicit sequence,
* ``L`` link lines (``L <from> <+/-> <to> <+/-> <overlap>``),
* ``P`` path lines (``P <name> <steps> <overlaps>``), where steps are
  comma-separated ``<segment><+/->`` items.

Segment names may be arbitrary strings; they are mapped to dense integer node
ids in input order, and the mapping is preserved on round-trip so layouts can
be joined back to the original names.

Parsing is single-pass with O(pending) transient memory: ``L``/``P`` records
are resolved against the name map and applied to the graph as soon as they
are read (GFA segments overwhelmingly precede their uses), and only *true
forward references* — records naming a segment not yet declared — are
spilled to a small list resolved once at end of input. Multi-GB GFA
ingestion therefore never buffers the link/path lines of the whole file.
Records that forward-reference are applied at end of input, after every
eagerly-resolved record.
"""
from __future__ import annotations

import io
import os
from typing import Dict, Iterable, List, TextIO, Tuple, Union

from .variation_graph import VariationGraph

__all__ = ["parse_gfa", "parse_gfa_text", "write_gfa", "gfa_to_text", "GFAError"]


class GFAError(ValueError):
    """Raised when a GFA document is malformed."""


def _open_maybe(path_or_handle: Union[str, os.PathLike, TextIO]) -> Tuple[TextIO, bool]:
    if hasattr(path_or_handle, "read"):
        return path_or_handle, False  # type: ignore[return-value]
    return open(path_or_handle, "r", encoding="utf-8"), True


def parse_gfa(source: Union[str, os.PathLike, TextIO]) -> VariationGraph:
    """Parse a GFA v1 file (path or handle) into a :class:`VariationGraph`."""
    handle, owned = _open_maybe(source)
    try:
        return _parse_lines(handle)
    finally:
        if owned:
            handle.close()


def parse_gfa_text(text: str) -> VariationGraph:
    """Parse GFA v1 from an in-memory string."""
    return _parse_lines(io.StringIO(text))


def _add_path_checked(graph: VariationGraph, path_name: str,
                      id_steps: List[Tuple[int, bool]]) -> None:
    try:
        graph.add_path(path_name, id_steps)
    except ValueError as exc:  # e.g. duplicate path names
        raise GFAError(f"invalid path '{path_name}': {exc}") from exc


def _parse_lines(handle: Iterable[str]) -> VariationGraph:
    graph = VariationGraph()
    name_to_id: Dict[str, int] = {}
    # True forward references only. L/P records whose segment names all
    # resolve are applied immediately; a record naming a not-yet-declared
    # segment is spilled here and resolved once at end of input. Transient
    # memory is therefore O(pending), not O(file) — the historical
    # implementation buffered every L/P line's string tuples until EOF,
    # which at multi-GB GFA scale dwarfed the graph itself.
    spilled_links: List[Tuple[str, bool, str, bool]] = []
    spilled_paths: List[Tuple[str, List[Tuple[str, bool]]]] = []

    for lineno, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        tag = fields[0]
        if tag == "H":
            continue
        if tag == "S":
            if len(fields) < 3:
                raise GFAError(f"line {lineno}: S line needs name and sequence")
            name, seq = fields[1], fields[2]
            if name in name_to_id:
                raise GFAError(f"line {lineno}: duplicate segment '{name}'")
            if seq == "*":
                seq = _sequence_from_tags(fields[3:], lineno)
            node_id = len(name_to_id)
            name_to_id[name] = node_id
            graph.add_node(node_id, seq)
        elif tag == "L":
            if len(fields) < 5:
                raise GFAError(f"line {lineno}: L line needs 5 fields")
            if fields[2] not in "+-" or fields[4] not in "+-":
                raise GFAError(f"line {lineno}: invalid orientation in L line")
            from_name, from_rev = fields[1], fields[2] == "-"
            to_name, to_rev = fields[3], fields[4] == "-"
            from_id = name_to_id.get(from_name)
            to_id = name_to_id.get(to_name)
            if from_id is None or to_id is None:
                spilled_links.append((from_name, from_rev, to_name, to_rev))
            else:
                graph.add_edge(from_id, to_id, from_rev, to_rev)
        elif tag == "P":
            if len(fields) < 3:
                raise GFAError(f"line {lineno}: P line needs name and steps")
            steps = _parse_path_steps(fields[2], lineno)
            id_steps: List[Tuple[int, bool]] = []
            for step_name, rev in steps:
                step_id = name_to_id.get(step_name)
                if step_id is None:
                    id_steps = None  # type: ignore[assignment]
                    break
                id_steps.append((step_id, rev))
            if id_steps is None:
                spilled_paths.append((fields[1], steps))
            else:
                _add_path_checked(graph, fields[1], id_steps)
        elif tag in ("W", "C", "J"):
            # Walks / containments / jumps are valid GFA but unused by layout.
            continue
        else:
            raise GFAError(f"line {lineno}: unknown record type '{tag}'")

    for from_name, from_rev, to_name, to_rev in spilled_links:
        try:
            graph.add_edge(
                name_to_id[from_name], name_to_id[to_name], from_rev, to_rev
            )
        except KeyError as exc:
            raise GFAError(f"link references unknown segment {exc}") from exc

    for path_name, steps in spilled_paths:
        try:
            resolved = [(name_to_id[n], rev) for n, rev in steps]
        except KeyError as exc:
            raise GFAError(
                f"path '{path_name}' references unknown segment {exc}"
            ) from exc
        _add_path_checked(graph, path_name, resolved)

    graph.segment_names = {v: k for k, v in name_to_id.items()}  # type: ignore[attr-defined]
    return graph


def _sequence_from_tags(tags: List[str], lineno: int) -> str:
    for tag in tags:
        if tag.startswith("LN:i:"):
            try:
                length = int(tag[5:])
            except ValueError as exc:
                raise GFAError(f"line {lineno}: bad LN tag '{tag}'") from exc
            if length < 0:
                raise GFAError(f"line {lineno}: negative LN tag")
            return "N" * length
    raise GFAError(f"line {lineno}: segment with '*' sequence requires an LN:i: tag")


def _parse_path_steps(step_field: str, lineno: int) -> List[Tuple[str, bool]]:
    steps: List[Tuple[str, bool]] = []
    if step_field == "*":
        return steps
    for item in step_field.split(","):
        if not item:
            raise GFAError(f"line {lineno}: empty path step")
        orient = item[-1]
        if orient not in "+-":
            raise GFAError(f"line {lineno}: path step '{item}' lacks orientation")
        steps.append((item[:-1], orient == "-"))
    return steps


def gfa_to_text(graph: VariationGraph, store_sequence: bool = True) -> str:
    """Serialise a graph to a GFA v1 string.

    When ``store_sequence`` is ``False``, sequences are written as ``*`` with
    ``LN:i:`` length tags — the lean form sufficient for layout.
    """
    names = getattr(graph, "segment_names", None) or {}
    out: List[str] = ["H\tVN:Z:1.0"]
    for node in graph.nodes():
        name = names.get(node.node_id, str(node.node_id + 1))
        if store_sequence:
            out.append(f"S\t{name}\t{node.sequence if node.sequence else '*'}"
                       + ("" if node.sequence else "\tLN:i:0"))
        else:
            out.append(f"S\t{name}\t*\tLN:i:{node.length}")
    for edge in graph.edges():
        fn = names.get(edge.from_id, str(edge.from_id + 1))
        tn = names.get(edge.to_id, str(edge.to_id + 1))
        out.append(
            "L\t{}\t{}\t{}\t{}\t0M".format(
                fn, "-" if edge.from_rev else "+", tn, "-" if edge.to_rev else "+"
            )
        )
    for path in graph.paths():
        steps = ",".join(
            f"{names.get(s.node_id, str(s.node_id + 1))}{'-' if s.is_reverse else '+'}"
            for s in path.steps
        )
        out.append(f"P\t{path.name}\t{steps if steps else '*'}\t*")
    return "\n".join(out) + "\n"


def write_gfa(
    graph: VariationGraph,
    destination: Union[str, os.PathLike, TextIO],
    store_sequence: bool = True,
) -> None:
    """Write a graph as GFA v1 to a path or file handle."""
    text = gfa_to_text(graph, store_sequence=store_sequence)
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(text)
