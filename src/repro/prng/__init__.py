"""Pseudo-random number generators used by the pangenome layout engines.

The paper's CPU baseline (``odgi-layout``) uses Xoshiro256+; its GPU kernel
uses cuRAND's XORWOW xorshift generator with one state per thread. Both are
reproduced here as vectorised multi-stream generators, along with SplitMix64
seeding and the AoS/SoA state-layout distinction at the heart of the
*coalesced random states* optimisation (paper Sec. V-B2, Table X).
"""
from .splitmix import SplitMix64, derive_seed, seed_streams, splitmix64_next
from .xoshiro import Xoshiro256Plus, rotl64
from .xorshift import XorwowState, state_addresses, AOS, SOA

__all__ = [
    "SplitMix64",
    "derive_seed",
    "seed_streams",
    "splitmix64_next",
    "Xoshiro256Plus",
    "rotl64",
    "XorwowState",
    "state_addresses",
    "AOS",
    "SOA",
]
