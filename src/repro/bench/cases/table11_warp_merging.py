"""Table XI — effects of warp merging (WM).

Measures executed instructions and average active threads per warp of the GPU
kernel with and without warp merging, plus the modelled run time. Paper
anchors: 1.5x fewer executed instructions, average active threads 20.5 → 27.9,
1.1x speedup.
"""
from __future__ import annotations

from ...core import GpuKernelConfig, OptimizedGpuEngine
from ...gpusim import RTX_A6000
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("table11_warp_merging", source="Table XI", suites=("tables",))
def run(ctx) -> CaseResult:
    """Warp merging raises active threads per warp and cuts instructions."""
    graph = ctx.chr1_graph
    params = ctx.bench_params
    seed = ctx.seed_for("table11/profile")

    results = {}
    for label, wm in (("w/o WM", False), ("w/ WM", True)):
        cfg = GpuKernelConfig(cache_friendly_layout=False,
                              coalesced_random_states=False, warp_merging=wm)
        results[label] = OptimizedGpuEngine(graph, params, cfg).profile(
            device=RTX_A6000, n_sample_terms=2048, seed=seed)
    without, with_wm = results["w/o WM"], results["w/ WM"]

    rows = [
        ["Executed instructions (sample)", without.warp_stats.executed_instructions,
         with_wm.warp_stats.executed_instructions,
         f"{without.warp_stats.executed_instructions / with_wm.warp_stats.executed_instructions:.2f}x",
         "1.5x"],
        ["Avg. active threads / warp", f"{without.warp_stats.avg_active_threads:.1f}",
         f"{with_wm.warp_stats.avg_active_threads:.1f}",
         f"{with_wm.warp_stats.avg_active_threads / without.warp_stats.avg_active_threads:.2f}x",
         "1.4x (20.5 -> 27.9)"],
        ["GPU run time (model, s)", f"{without.runtime_s:.3g}", f"{with_wm.runtime_s:.3g}",
         f"{without.runtime_s / with_wm.runtime_s:.2f}x", "1.1x"],
    ]

    # Paper-shape assertions.
    assert with_wm.warp_stats.avg_active_threads > without.warp_stats.avg_active_threads
    assert without.warp_stats.avg_active_threads < 30.0
    assert with_wm.warp_stats.avg_active_threads > 30.0
    assert with_wm.warp_stats.executed_instructions < without.warp_stats.executed_instructions
    assert with_wm.runtime_s < without.runtime_s
    assert 1.02 < without.runtime_s / with_wm.runtime_s < 1.6

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("active_threads_without_wm", without.warp_stats.avg_active_threads,
            direction="info")
    out.add("active_threads_with_wm", with_wm.warp_stats.avg_active_threads,
            direction="higher")
    out.add("instruction_improvement",
            without.warp_stats.executed_instructions
            / with_wm.warp_stats.executed_instructions,
            unit="x", direction="higher")
    out.add("wm_speedup", without.runtime_s / with_wm.runtime_s,
            unit="x", direction="higher")
    out.add("gpu_time_with_wm_s", with_wm.runtime_s, unit="s(model)", direction="lower")

    out.tables.append(format_table(
        ["Metric", "w/o WM", "w/ WM", "Improvement", "Paper"],
        rows,
        title="Table XI: effects of warp merging (Chr.1-like)",
    ))
    return out
