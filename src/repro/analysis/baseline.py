"""Committed suppression baseline for grandfathered findings.

The baseline is a small JSON document listing findings that are known,
accepted and *temporarily* exempt — the ratchet mechanism that lets the
linter land strict on a tree with pre-existing violations, then tighten as
they are fixed. Entries match findings structurally (rule + path + the
stripped source line), never by line number, so unrelated edits above a
grandfathered site do not invalidate it.

Entries *expire*: a baseline entry that matches no current finding is
reported as stale, and ``--strict`` (the CI configuration) fails on stale
entries so the file can only shrink honestly. The committed baseline
(``tools/analysis_baseline.json``) is empty — every legitimate site carries
an explanatory pragma instead.
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from .registry import AnalysisError, Finding

__all__ = ["BaselineEntry", "Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_PATH"]

BASELINE_VERSION = 1

#: Where ``repro analyze`` looks for the committed baseline by default.
DEFAULT_BASELINE_PATH = "tools/analysis_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, matched by structure rather than line."""

    rule: str
    path: str
    snippet: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path, "snippet": self.snippet}


class Baseline:
    """A loaded suppression baseline."""

    def __init__(self, entries: List[BaselineEntry], path: str = ""):
        self.entries = entries
        self.path = path

    # ------------------------------------------------------------------- io
    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or "entries" not in doc:
            raise AnalysisError(
                f"baseline {path!r} must be an object with an 'entries' list")
        version = doc.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline {path!r} has schema version {version}, "
                f"this build reads version {BASELINE_VERSION}")
        entries = []
        for i, raw in enumerate(doc["entries"]):
            try:
                entries.append(BaselineEntry(rule=raw["rule"], path=raw["path"],
                                             snippet=raw["snippet"]))
            except (KeyError, TypeError) as exc:
                raise AnalysisError(
                    f"baseline {path!r} entry {i} is malformed: {exc}") from exc
        return cls(entries, path=path)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        seen = set()
        entries = []
        for f in findings:
            entry = BaselineEntry(rule=f.rule, path=f.path, snippet=f.snippet)
            if entry.key() not in seen:
                seen.add(entry.key())
                entries.append(entry)
        return cls(entries)

    def save(self, path: str) -> None:
        doc = {
            "version": BASELINE_VERSION,
            "comment": ("Grandfathered findings exempt from 'repro analyze'. "
                        "Entries expire when the finding disappears; prefer "
                        "fixing sites (or pragma-annotating legitimate ones) "
                        "over adding entries."),
            "entries": [e.to_dict() for e in sorted(self.entries,
                                                    key=BaselineEntry.key)],
        }
        Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------- matching
    def apply(self, findings: List[Finding]
              ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (kept, suppressed); also return stale entries.

        An entry suppresses *every* finding sharing its (rule, path,
        snippet) key — a line duplicated verbatim in one file is one
        grandfathered pattern, not N. Entries matching nothing are stale.
        """
        keys = {e.key(): e for e in self.entries}
        matched = set()
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for f in findings:
            key = (f.rule, f.path, f.snippet)
            if key in keys:
                matched.add(key)
                suppressed.append(f)
            else:
                kept.append(f)
        stale = [e for e in self.entries if e.key() not in matched]
        return kept, suppressed, stale

    def __len__(self) -> int:
        return len(self.entries)
