"""Table VIII — layout quality comparison between CPU and GPU engines.

Runs the CPU baseline and the optimized GPU engine on a subset of the
chromosome suite (every chromosome would take minutes; the subset spans the
size range) from the same scrambled initial layout, computes the sampled path
stress of both with 95% confidence intervals, and checks that the SPS ratio
stays near 1 — the paper's geometric means are 1.08 (A6000) and 1.03 (A100).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table, geometric_mean
from repro.core import CpuBaselineEngine, OptimizedGpuEngine
from repro.core.layout import Layout
from repro.metrics import sampled_path_stress, stress_ratio

SUBSET = ["Chr.1", "Chr.5", "Chr.10", "Chr.16", "Chr.19", "Chr.Y"]


@pytest.mark.paper_table("Table VIII")
def test_table08_layout_quality_ratio(benchmark, chromosome_graphs, quality_bench_params):
    params = quality_bench_params

    def run_all():
        out = {}
        for name in SUBSET:
            graph = chromosome_graphs[name]
            rng = np.random.default_rng(17)
            scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))
            cpu = CpuBaselineEngine(graph, params).run(initial=scrambled)
            gpu = OptimizedGpuEngine(graph, params).run(initial=scrambled)
            cpu_sps = sampled_path_stress(cpu.layout, graph, samples_per_step=30, seed=0)
            gpu_sps = sampled_path_stress(gpu.layout, graph, samples_per_step=30, seed=0)
            out[name] = (cpu_sps, gpu_sps)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    ratios = []
    for name, (cpu_sps, gpu_sps) in results.items():
        ratio = stress_ratio(gpu_sps, cpu_sps)
        ratios.append(max(ratio, 1e-3))
        rows.append([
            name,
            f"[{cpu_sps.ci_low:.3g}, {cpu_sps.ci_high:.3g}]",
            f"[{gpu_sps.ci_low:.3g}, {gpu_sps.ci_high:.3g}]",
            f"{ratio:.2f}",
        ])
        # Per-chromosome: the GPU layout is never catastrophically worse (the
        # paper's per-chromosome ratios range from 0.47 to 2.31).
        assert ratio < 4.0

    gm = geometric_mean(ratios)
    rows.append(["GeoMean", "-", "-", f"{gm:.2f}"])
    # Paper: geometric-mean SPS ratio 1.08 (A6000) / 1.03 (A100) — i.e. no
    # quality loss on average. Allow a modest band at this reduced scale.
    assert 0.4 < gm < 2.0

    print()
    print(format_table(
        ["Pan.", "CPU SPS CI95%", "GPU SPS CI95%", "SPS ratio (GPU/CPU)"],
        rows,
        title="Table VIII: layout quality comparison, CPU vs optimized GPU engine",
    ))
