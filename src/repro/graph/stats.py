"""Graph statistics used throughout the paper's tables.

Tables I and VI report, per pangenome graph: number of nucleotides, nodes,
edges and paths, the average node degree and the graph density. This module
computes those statistics from either representation and aggregates them over
a dataset suite (min / max / mean rows of Table VI).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from .lean import LeanGraph
from .variation_graph import VariationGraph

__all__ = ["GraphStats", "compute_stats", "aggregate_stats", "estimate_edge_count"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one variation graph (one row of Table I / VI)."""

    name: str
    n_nucleotides: int
    n_nodes: int
    n_edges: int
    n_paths: int
    avg_degree: float
    density: float
    total_path_steps: int

    def as_dict(self) -> Dict[str, Union[str, int, float]]:
        """Dictionary form, convenient for table formatting."""
        return {
            "name": self.name,
            "n_nucleotides": self.n_nucleotides,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "n_paths": self.n_paths,
            "avg_degree": self.avg_degree,
            "density": self.density,
            "total_path_steps": self.total_path_steps,
        }


def estimate_edge_count(graph: LeanGraph) -> int:
    """Count distinct consecutive node pairs over all paths.

    The lean structure does not store the edge list explicitly (layout never
    uses it); the variation-graph edge set is, by construction, the set of
    ordered node pairs adjacent on some path, which we recover here for the
    statistics tables.
    """
    pairs = set()
    offsets = graph.path_offsets
    nodes = graph.step_nodes
    for p in range(graph.n_paths):
        start, stop = int(offsets[p]), int(offsets[p + 1])
        if stop - start < 2:
            continue
        a = nodes[start:stop - 1]
        b = nodes[start + 1:stop]
        pairs.update(zip(a.tolist(), b.tolist()))
    return len(pairs)


def compute_stats(
    graph: Union[VariationGraph, LeanGraph],
    name: str = "graph",
    n_edges: Optional[int] = None,
) -> GraphStats:
    """Compute Table I / VI statistics for a single graph.

    Average degree is ``2 * E / V`` (undirected convention used by the paper,
    giving ≈1.4 for HPRC graphs); density is ``E / (V * (V - 1))``.
    """
    if isinstance(graph, VariationGraph):
        lean = LeanGraph.from_variation_graph(graph)
        edges = graph.edge_count if n_edges is None else n_edges
    else:
        lean = graph
        edges = estimate_edge_count(lean) if n_edges is None else n_edges
    n_nodes = lean.n_nodes
    avg_degree = (2.0 * edges / n_nodes) if n_nodes else 0.0
    density = (edges / (n_nodes * (n_nodes - 1))) if n_nodes > 1 else 0.0
    return GraphStats(
        name=name,
        n_nucleotides=lean.total_sequence_length,
        n_nodes=n_nodes,
        n_edges=edges,
        n_paths=lean.n_paths,
        avg_degree=avg_degree,
        density=density,
        total_path_steps=lean.total_steps,
    )


def aggregate_stats(stats: Iterable[GraphStats]) -> Dict[str, Dict[str, float]]:
    """Aggregate a suite of graphs into Min / Max / Mean rows (Table VI)."""
    rows: List[GraphStats] = list(stats)
    if not rows:
        raise ValueError("aggregate_stats requires at least one graph")
    fields = ["n_nucleotides", "n_nodes", "n_edges", "n_paths", "avg_degree", "density"]
    arrays = {f: np.array([getattr(r, f) for r in rows], dtype=np.float64) for f in fields}
    out: Dict[str, Dict[str, float]] = {}
    for label, fn in (("min", np.min), ("max", np.max), ("mean", np.mean)):
        out[label] = {f: float(fn(arrays[f])) for f in fields}
    return out
