"""The stress-gradient update shared by every layout engine.

Implements lines 14–15 of Alg. 1 following the odgi-layout / Zheng-et-al.
formulation: each selected term ``(v_i, v_j, d_ref)`` moves both
visualisation points along their connecting line so the layout distance
approaches the reference distance, with a per-term step size
``μ = min(η · d_ref^-2, 1)``.

A *batch* of terms is applied at once. Within a batch every term reads the
coordinates as they were at the start of the batch and the writes are merged
afterwards — exactly the staleness the paper's Hogwild!/large-batch analysis
discusses (Sec. III-A, IV-A): small batches behave like the serial algorithm,
huge batches accumulate stale updates and degrade quality (Table III).

Three write-merge policies are offered:

* ``"hogwild"`` (default) — colliding terms' displacements are averaged per
  point. Sequentially applied full-strength corrections each pull the point
  toward their own target rather than stacking, so the average is the closest
  batched proxy for asynchronous Hogwild stores; collision-free terms are
  unaffected.
* ``"accumulate"`` — displacements of colliding terms add up; faithful to a
  pure gradient-sum formulation but can overshoot when the per-term step is
  saturated (μ = 1), so it is exposed for sensitivity studies only.
* ``"last_writer"`` — only one colliding term survives per point, modelling a
  racy unsynchronised store; provided to study collision sensitivity.

Cost discipline (paper Sec. V-B): the update step is memory-bound, so the
merge must never touch more state than the batch itself. All three policies
operate on the *compacted* index space of the points the batch actually
touches (:func:`compact_points`), making ``apply_batch`` O(batch) per batch
— independent of the graph size — and an :class:`UpdateWorkspace` of
preallocated scratch buffers removes the per-batch allocation of the large
staging arrays.

Backend dispatch: every array operation goes through an
:class:`~repro.backend.ArrayBackend` — the workspace buffers are allocated
from the backend's namespace, the merge scatters are backend kernels, and
batch inputs are coerced with ``backend.asarray`` (a no-op on host
backends). Callers that pass neither a ``workspace`` nor a ``backend`` get
the NumPy reference backend, which issues byte-for-byte the historical call
sequence; engines resolve their backend once (``LayoutParams.backend`` /
``REPRO_BACKEND``) and thread it here via their per-run workspace.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..backend import ArrayBackend, get_backend
from .selection import StepBatch

__all__ = [
    "UpdateStats",
    "UpdateWorkspace",
    "compact_points",
    "compute_displacements",
    "merge_batch",
    "apply_batch",
    "batch_stress",
]

_MIN_DISTANCE = 1e-9


def _default_backend() -> ArrayBackend:
    """The NumPy reference backend, the low-level default.

    Bare calls to the functions in this module receive host arrays, so the
    host reference backend is the only safe default; environment-driven
    backend selection (``REPRO_BACKEND``) is applied where the coordinate
    state is created — at engine level — not here.
    """
    return get_backend("numpy")


def _resolve_backend(workspace: Optional["UpdateWorkspace"],
                     backend: Optional[ArrayBackend]) -> ArrayBackend:
    """One backend per call: the workspace's, an explicit one, or the default."""
    if workspace is not None:
        if backend is not None and backend is not workspace.backend:
            raise ValueError(
                f"backend mismatch: workspace is on {workspace.backend.name!r} "
                f"but backend={backend.name!r} was passed")
        return workspace.backend
    return backend if backend is not None else _default_backend()


@dataclass
class UpdateStats:
    """Counters describing one applied batch (consumed by profiling models)."""

    n_terms: int
    n_zero_ref: int
    n_point_collisions: int
    mean_step_magnitude: float
    max_step_magnitude: float


class UpdateWorkspace:
    """Reusable scratch buffers for the update hot path.

    One workspace is created per :meth:`LayoutEngine.run` (sized to the
    largest batch of the engine's plan) and threaded through every
    :func:`apply_batch` / :func:`compute_displacements` call of the run, so
    the dominant batch-shaped temporaries — endpoint indices, gathered
    coordinates, displacement vectors and the merge staging arrays — are
    allocated once instead of once per batch. Buffers grow on demand (engines that expand
    batches after planning, e.g. warp-shuffle data reuse, stay correct) and
    never shrink.

    The buffers live in the memory space of the workspace's
    :class:`~repro.backend.ArrayBackend` (host NumPy by default), which also
    fixes the backend used by every call the workspace is threaded through.

    The buffers hold no state between calls; sharing one workspace across
    engines is safe as long as calls do not interleave mid-update.
    """

    def __init__(self, max_batch: int = 1, backend: Optional[ArrayBackend] = None):
        self.backend = backend if backend is not None else _default_backend()
        self.max_batch = 0
        self._grow(max(int(max_batch), 1))

    def _grow(self, n: int) -> None:
        be = self.backend
        self.max_batch = n
        self.point_i = be.empty(n, dtype=np.int64)
        self.point_j = be.empty(n, dtype=np.int64)
        self.gather_i = be.empty((n, 2), dtype=np.float64)
        self.gather_j = be.empty((n, 2), dtype=np.float64)
        self.diff = be.empty((n, 2), dtype=np.float64)
        self.mag = be.empty(n, dtype=np.float64)
        self.mag_safe = be.empty(n, dtype=np.float64)
        self.term_delta = be.empty((n, 2), dtype=np.float64)
        self.merge_points = be.empty(2 * n, dtype=np.int64)
        self.merge_delta = be.empty((2 * n, 2), dtype=np.float64)

    def ensure(self, batch_size: int) -> None:
        """Grow the buffers if ``batch_size`` exceeds the current capacity."""
        if batch_size > self.max_batch:
            self._grow(int(batch_size))


def compact_points(
    points: np.ndarray, backend: Optional[ArrayBackend] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact flat point indices onto the touched-point index space.

    Returns ``(unique_points, inverse, counts)`` from a single sort-based
    pass (``np.unique(..., return_inverse=True)``): ``inverse`` maps every
    entry of ``points`` to its slot in ``unique_points`` and ``counts`` is
    the per-slot multiplicity. The same compaction serves the bincount-based
    write merges *and* the collision counter, so the hot path never
    materialises graph-sized scratch arrays and never sorts twice.

    Dispatches to ``backend`` (NumPy reference when omitted).
    """
    be = backend if backend is not None else _default_backend()
    return be.compact_points(points)


def compute_displacements(
    coords: np.ndarray,
    batch: StepBatch,
    eta: float,
    workspace: Optional[UpdateWorkspace] = None,
    backend: Optional[ArrayBackend] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-term displacement vectors for both endpoints of every term.

    Returns ``(point_i, point_j, delta)`` where ``point_*`` are flat indices
    into the ``(2N, 2)`` coordinate array and ``delta`` is the displacement to
    subtract from point ``i`` (and add to point ``j``). ``coords`` must live
    in the resolved backend's memory space; the batch's (host) index arrays
    are coerced with ``backend.asarray``.

    When a ``workspace`` is supplied the returned arrays are views into its
    buffers and are overwritten by the next call that shares the workspace.
    """
    be = _resolve_backend(workspace, backend)
    xp = be.xp
    n = len(batch)
    ws = workspace if workspace is not None else UpdateWorkspace(n, backend=be)
    ws.ensure(n)

    point_i = ws.point_i[:n]
    point_j = ws.point_j[:n]
    xp.multiply(be.asarray(batch.node_i), 2, out=point_i)
    point_i += be.asarray(batch.vis_i)
    xp.multiply(be.asarray(batch.node_j), 2, out=point_j)
    point_j += be.asarray(batch.vis_j)

    d_ref = be.asarray(batch.d_ref)
    valid = d_ref > 0
    d_safe = xp.where(valid, d_ref, 1.0)
    w = 1.0 / (d_safe * d_safe)
    mu = xp.minimum(eta * w, 1.0)

    gathered_i = xp.take(coords, point_i, axis=0, out=ws.gather_i[:n])
    gathered_j = xp.take(coords, point_j, axis=0, out=ws.gather_j[:n])
    diff = xp.subtract(gathered_i, gathered_j, out=ws.diff[:n])
    mag = be.rowwise_sqnorm(diff, out=ws.mag[:n])
    xp.sqrt(mag, out=mag)
    mag_safe = xp.maximum(mag, _MIN_DISTANCE, out=ws.mag_safe[:n])
    delta_scalar = xp.where(valid, mu * (mag - d_safe) / 2.0, 0.0)
    # Degenerate coincident points: nudge along x to separate them.
    unit = xp.divide(diff, mag_safe[:, None], out=ws.term_delta[:n])
    coincident = mag < _MIN_DISTANCE
    if bool(coincident.any()):
        unit[coincident] = be.asarray([1.0, 0.0])
    delta = xp.multiply(unit, delta_scalar[:, None], out=unit)
    return point_i, point_j, delta


def merge_batch(
    coords: np.ndarray,
    batch: StepBatch,
    eta: float,
    merge: str,
    workspace: UpdateWorkspace,
) -> Tuple[np.ndarray, int]:
    """Displace and merge one non-empty batch into ``coords`` — no statistics.

    The coordinate-mutating core shared by :func:`apply_batch` and the fused
    iteration path (:mod:`repro.core.fused`): gather, stress gradient, merge
    staging and the backend merge scatter, issuing exactly the call sequence
    :func:`apply_batch` always issued. What it *skips* is everything that
    only feeds :class:`UpdateStats` — the per-term step-magnitude reductions
    and the zero-reference count — which touch no coordinate state, so
    layouts are byte-identical whichever entry point ran.

    Returns ``(delta, n_point_collisions)``; ``delta`` is the per-term
    displacement view into the workspace (overwritten by the next call).
    """
    be = workspace.backend
    xp = be.xp
    n = len(batch)
    point_i, point_j, delta = compute_displacements(coords, batch, eta,
                                                    workspace=workspace)

    all_points = workspace.merge_points[: 2 * n]
    all_points[:n] = point_i
    all_points[n:] = point_j
    all_deltas = workspace.merge_delta[: 2 * n]
    xp.negative(delta, out=all_deltas[:n])
    all_deltas[n:] = delta

    touched, inverse, counts = be.compact_points(all_points)
    n_collisions = int(all_points.size - touched.size)

    be.merge_scatter(coords, touched, inverse, counts, all_deltas, merge)
    return delta, n_collisions


def apply_batch(
    coords: np.ndarray,
    batch: StepBatch,
    eta: float,
    merge: str = "hogwild",
    workspace: Optional[UpdateWorkspace] = None,
    backend: Optional[ArrayBackend] = None,
) -> UpdateStats:
    """Apply one batch of updates to ``coords`` in place and return statistics.

    Every merge policy works over the compacted touched-point space, so the
    per-batch cost is O(batch · log batch), independent of the graph size.
    Passing the run's :class:`UpdateWorkspace` additionally removes the
    steady-state allocation of all batch-shaped staging arrays and selects
    the execution backend (an explicit ``backend`` must agree with it).
    """
    if merge not in ("hogwild", "accumulate", "last_writer"):
        raise ValueError("merge must be 'hogwild', 'accumulate' or 'last_writer'")
    if len(batch) == 0:
        return UpdateStats(0, 0, 0, 0.0, 0.0)
    be = _resolve_backend(workspace, backend)
    n = len(batch)
    ws = workspace if workspace is not None else UpdateWorkspace(n, backend=be)
    delta, n_collisions = merge_batch(coords, batch, eta, merge, ws)

    mags = be.rowwise_sqnorm(delta, out=ws.mag[:n])
    be.xp.sqrt(mags, out=mags)
    return UpdateStats(
        n_terms=n,
        n_zero_ref=int((batch.d_ref <= 0).sum()),
        n_point_collisions=n_collisions,
        mean_step_magnitude=float(mags.mean()) if mags.size else 0.0,
        max_step_magnitude=float(mags.max()) if mags.size else 0.0,
    )


def batch_stress(
    coords: np.ndarray, batch: StepBatch, backend: Optional[ArrayBackend] = None
) -> float:
    """Mean normalised stress of the batch's terms under the current layout.

    This is the quantity minimised by the algorithm (Alg. 1 line 14) and the
    building block of the path-stress metrics in :mod:`repro.metrics`.
    ``coords`` must live in ``backend``'s memory space (host NumPy default).
    """
    valid = batch.d_ref > 0
    if not bool(valid.any()):
        return 0.0
    be = backend if backend is not None else _default_backend()
    xp = be.xp
    point_i = be.asarray(2 * batch.node_i + batch.vis_i)
    point_j = be.asarray(2 * batch.node_j + batch.vis_j)
    diff = coords[point_i] - coords[point_j]
    mag = xp.sqrt(be.rowwise_sqnorm(diff))
    d = be.asarray(batch.d_ref)
    valid_dev = be.asarray(valid)
    terms = ((mag[valid_dev] - d[valid_dev]) / d[valid_dev]) ** 2
    return float(terms.mean())
