"""Shared fixtures for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper and prints
its rows (paper value vs. reproduction value where applicable). The fixtures
here hold the scaled datasets and layout parameters shared across benchmarks
so the suite runs end-to-end on a single CPU core in minutes.
"""
from __future__ import annotations

import pytest

from repro.core import LayoutParams
from repro.synth import chr1_like, chromosome_suite, hla_drb1_like, mhc_like


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_table(id): which paper element a benchmark reproduces")


@pytest.fixture(scope="session")
def bench_params():
    """Layout parameters used by the benchmark workloads (reduced schedule)."""
    return LayoutParams(iter_max=10, steps_per_step_unit=2.0, seed=9399)


@pytest.fixture(scope="session")
def quality_bench_params():
    """Stronger schedule used when layout quality (not speed) is measured."""
    return LayoutParams(iter_max=20, steps_per_step_unit=4.0, seed=9399)


@pytest.fixture(scope="session")
def hla_graph():
    """HLA-DRB1-like graph at reduced scale."""
    return hla_drb1_like(scale=0.25)


@pytest.fixture(scope="session")
def mhc_graph():
    """MHC-like graph at reduced scale."""
    return mhc_like(scale=0.15)


@pytest.fixture(scope="session")
def chr1_graph():
    """Chr.1-like graph at reduced scale."""
    return chr1_like(scale=0.1)


@pytest.fixture(scope="session")
def representative_graphs(hla_graph, mhc_graph, chr1_graph):
    """The three representative pangenomes of Table I (scaled)."""
    return {"HLA-DRB1": hla_graph, "MHC": mhc_graph, "Chr.1": chr1_graph}


@pytest.fixture(scope="session")
def chromosome_graphs():
    """The 24-chromosome suite (quick scale)."""
    return chromosome_suite(scale=0.35, quick=True)
