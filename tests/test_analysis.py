"""Tests for the repro.analysis contract linter (PR 7).

Each checker is driven over small known-good / known-bad fixture trees
written to tmp_path; the suite also covers the pragma grammar, baseline
add/expire lifecycle, JSON report schema, CLI exit codes, and an
end-to-end clean run over the real ``src`` tree.
"""
from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    CheckerRegistry,
    checker,
    run_analysis,
    scan_pragmas,
)
from repro.analysis.registry import DuplicateCheckerError, UnknownCheckerError
from repro.cli import analyze_main

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


def write_tree(root: Path, files: dict) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


def findings_for(tmp_path, files, rule=None):
    write_tree(tmp_path, files)
    report = run_analysis([str(tmp_path)])
    if rule is None:
        return report.findings
    return [f for f in report.findings if f.rule == rule]


class TestDet001:
    def test_unseeded_rng_flagged_anywhere(self, tmp_path):
        found = findings_for(tmp_path, {
            "util/helper.py": "import numpy as np\nrng = np.random.default_rng()\n",
        }, rule="DET001")
        assert len(found) == 1
        assert found[0].line == 2
        assert "derive_seed" in found[0].message

    def test_derive_seed_argument_exempts(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/draws.py": (
                "import numpy as np\n"
                "from repro.prng import derive_seed\n"
                "def make(seed):\n"
                "    return np.random.default_rng(derive_seed(seed, 'draws'))\n"
            ),
        }, rule="DET001")
        assert found == []

    def test_random_module_and_urandom_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/bad.py": (
                "import os\n"
                "import random\n"
                "x = random.random()\n"
                "y = os.urandom(8)\n"
            ),
        }, rule="DET001")
        assert sorted(f.line for f in found) == [3, 4]

    def test_wallclock_flagged_only_in_hot_path_dirs(self, tmp_path):
        files = {
            "core/engine.py": "import time\nt = time.perf_counter()\n",
            "bench/timing.py": "import time\nt = time.perf_counter()\n",
        }
        found = findings_for(tmp_path, files, rule="DET001")
        assert [f.path for f in found] == [str(tmp_path / "core" / "engine.py")]

    def test_pragma_with_reason_suppresses(self, tmp_path):
        write_tree(tmp_path, {
            "core/ok.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng(7)  # det-ok: fixture seed\n"
            ),
        })
        report = run_analysis([str(tmp_path)])
        assert report.findings == []
        assert report.suppressed_by_pragma == 1

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        write_tree(tmp_path, {
            "core/ok.py": (
                "import numpy as np\n"
                "# det-ok: fixture seed\n"
                "rng = np.random.default_rng(7)\n"
            ),
        })
        report = run_analysis([str(tmp_path)])
        assert report.findings == []
        assert report.suppressed_by_pragma == 1

    def test_reasonless_pragma_rejected_and_does_not_suppress(self, tmp_path):
        write_tree(tmp_path, {
            "core/bad.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng()  # det-ok\n"
            ),
        })
        report = run_analysis([str(tmp_path)])
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["DET001", "PRAGMA001"]
        assert report.suppressed_by_pragma == 0

    def test_wrong_token_does_not_suppress(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/bad.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng()  # alloc-ok: wrong token\n"
            ),
        }, rule="DET001")
        assert len(found) == 1


class TestDet002:
    def test_duplicate_labels_flagged_after_first(self, tmp_path):
        found = findings_for(tmp_path, {
            "a.py": "s1 = derive_seed(seed, 'stream')\n",
            "b.py": "s2 = derive_seed(seed, 'stream')\n",
            "c.py": "s3 = derive_seed(seed, 'other')\n",
        }, rule="DET002")
        assert len(found) == 1
        assert found[0].path.endswith("b.py")
        assert "a.py" in found[0].message

    def test_fstring_templates_collapse_to_duplicates(self, tmp_path):
        found = findings_for(tmp_path, {
            "a.py": "s1 = derive_seed(seed, f'lvl{i}')\n",
            "b.py": "s2 = derive_seed(seed, f'lvl{j}')\n",
        }, rule="DET002")
        assert len(found) == 1

    def test_unique_labels_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "a.py": "s1 = derive_seed(seed, 'one')\ns2 = derive_seed(seed, 'two')\n",
        }, rule="DET002")
        assert found == []


ALLOC_LOOP = (
    "import numpy as np\n"
    "def run(n):\n"
    "    for i in range(n):\n"
    "        buf = np.zeros(4)\n"
    "    return buf\n"
)


class TestAlloc001:
    def test_allocation_in_hot_loop_file_flagged(self, tmp_path):
        found = findings_for(tmp_path, {"core/updates.py": ALLOC_LOOP},
                             rule="ALLOC001")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert found[0].line == 4

    def test_allocation_outside_loop_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/updates.py": "import numpy as np\nbuf = np.zeros(4)\n",
        }, rule="ALLOC001")
        assert found == []

    def test_run_path_function_in_hot_dir_flagged(self, tmp_path):
        text = ALLOC_LOOP.replace("def run(", "def run_iteration(")
        found = findings_for(tmp_path, {"parallel/engine.py": text},
                             rule="ALLOC001")
        assert len(found) == 1

    def test_non_run_function_outside_hot_files_clean(self, tmp_path):
        text = ALLOC_LOOP.replace("def run(", "def helper(")
        found = findings_for(tmp_path, {"parallel/engine.py": text},
                             rule="ALLOC001")
        assert found == []

    def test_alloc_ok_pragma_suppresses(self, tmp_path):
        text = ALLOC_LOOP.replace(
            "buf = np.zeros(4)",
            "buf = np.zeros(4)  # alloc-ok: once per level, not per step")
        write_tree(tmp_path, {"core/fused.py": text})
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings if f.rule == "ALLOC001"] == []
        assert report.suppressed_by_pragma == 1


class TestAlloc001PerIterationFunctions:
    """PR 8 extension: per-iteration functions are whole-body steady state."""

    FUNC_TOP_ALLOC = (
        "import numpy as np\n"
        "def iteration_draws(uniforms, plan, xp):\n"
        "    out = xp.empty((8, 4))\n"
        "    return out\n"
    )

    def test_function_top_alloc_flagged_without_a_loop(self, tmp_path):
        found = findings_for(tmp_path,
                             {"backend/draws.py": self.FUNC_TOP_ALLOC},
                             rule="ALLOC001")
        assert len(found) == 1
        assert found[0].line == 3
        assert "per-iteration function 'iteration_draws'" in found[0].message

    def test_run_iteration_host_scanned_too(self, tmp_path):
        text = self.FUNC_TOP_ALLOC.replace("def iteration_draws(",
                                           "def run_iteration_host(")
        found = findings_for(tmp_path, {"core/engine.py": text},
                             rule="ALLOC001")
        assert len(found) == 1

    def test_other_function_names_stay_loop_scoped(self, tmp_path):
        text = self.FUNC_TOP_ALLOC.replace("def iteration_draws(",
                                           "def helper_draws(")
        found = findings_for(tmp_path, {"backend/draws.py": text},
                             rule="ALLOC001")
        assert found == []

    def test_loop_and_whole_body_findings_deduplicate(self, tmp_path):
        text = (
            "import numpy as np\n"
            "def iteration_draws(plan, xp):\n"
            "    for seg in plan:\n"
            "        buf = xp.zeros(seg)\n"
            "    return buf\n"
        )
        found = findings_for(tmp_path, {"core/fused.py": text},
                             rule="ALLOC001")
        assert len(found) == 1  # one site, one finding — not loop + body

    def test_alloc_ok_pragma_suppresses_whole_body_finding(self, tmp_path):
        text = self.FUNC_TOP_ALLOC.replace(
            "out = xp.empty((8, 4))",
            "out = xp.empty((8, 4))  # alloc-ok: grow-on-demand scratch")
        write_tree(tmp_path, {"backend/draws.py": text})
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings if f.rule == "ALLOC001"] == []
        assert report.suppressed_by_pragma == 1


class TestMem001:
    ITER_SCALE_ALLOC = (
        "import numpy as np\n"
        "def draws(total_terms, xp):\n"
        "    return xp.empty((8, total_terms))\n"
    )

    def test_iteration_scale_alloc_in_hot_dir_flagged(self, tmp_path):
        found = findings_for(tmp_path,
                             {"core/fused.py": self.ITER_SCALE_ALLOC},
                             rule="MEM001")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert "total_terms" in found[0].message
        assert "memory_budget" in found[0].message

    def test_bulk_prng_draw_sized_by_iteration_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "prng/streams.py": (
                "def block(rng, plan):\n"
                "    return rng.next_double_block(plan.calls_per_iteration)\n"
            ),
        }, rule="MEM001")
        assert len(found) == 1
        assert "calls_per_iteration" in found[0].message

    def test_attribute_spelling_of_scale_name_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "backend/x.py": (
                "import numpy as np\n"
                "def stage(result, xp):\n"
                "    return xp.zeros(result.terms_per_iteration)\n"
            ),
        }, rule="MEM001")
        assert len(found) == 1

    def test_chunk_sized_alloc_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/fused.py": (
                "import numpy as np\n"
                "def draws(chunk_terms, xp):\n"
                "    return xp.empty((8, chunk_terms))\n"
            ),
        }, rule="MEM001")
        assert found == []

    def test_outside_hot_path_dirs_clean(self, tmp_path):
        found = findings_for(tmp_path,
                             {"bench/cases/big.py": self.ITER_SCALE_ALLOC},
                             rule="MEM001")
        assert found == []

    def test_mem_ok_pragma_suppresses(self, tmp_path):
        text = self.ITER_SCALE_ALLOC.replace(
            "return xp.empty((8, total_terms))",
            "return xp.empty((8, total_terms))  "
            "# mem-ok: plan is budget-bounded by build_iteration_plans")
        write_tree(tmp_path, {"core/fused.py": text})
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings if f.rule == "MEM001"] == []
        assert report.suppressed_by_pragma >= 1


class TestXp001:
    def test_np_call_in_backend_function_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "m.py": (
                "import numpy as np\n"
                "def apply(x, xp):\n"
                "    return np.sqrt(x)\n"
            ),
        }, rule="XP001")
        assert len(found) == 1
        assert "apply" in found[0].message

    def test_xp_call_and_plain_function_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "m.py": (
                "import numpy as np\n"
                "def apply(x, xp):\n"
                "    return xp.sqrt(x)\n"
                "def host_only(x):\n"
                "    return np.sqrt(x)\n"
            ),
        }, rule="XP001")
        assert found == []

    def test_dtype_reference_and_allowlist_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "m.py": (
                "import numpy as np\n"
                "def apply(x, backend):\n"
                "    eps = np.finfo(np.float64).eps\n"
                "    return backend.xp.asarray(x, dtype=np.float64) + eps\n"
            ),
        }, rule="XP001")
        assert found == []

    def test_xp_ok_pragma_suppresses(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "import numpy as np\n"
                "def apply(x, xp):\n"
                "    return np.asarray(x)  # xp-ok: host staging buffer\n"
            ),
        })
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings if f.rule == "XP001"] == []


SHM_GOOD = (
    "def parent(payload):\n"
    "    block = SharedArrayBlock.create(payload)\n"
    "    try:\n"
    "        use(block)\n"
    "    finally:\n"
    "        block.unlink()\n"
)
SHM_BAD_CREATE = (
    "def parent(payload):\n"
    "    block = SharedArrayBlock.create(payload)\n"
    "    use(block)\n"
)
SHM_BAD_ATTACH = (
    "def worker(name):\n"
    "    block = SharedArrayBlock.attach(name)\n"
    "    use(block)\n"
    "    block.unlink()\n"
)
SHM_GOOD_ATTACH = (
    "def worker(name):\n"
    "    block = SharedArrayBlock.attach(name)\n"
    "    try:\n"
    "        use(block)\n"
    "    finally:\n"
    "        block.close()\n"
)


class TestShm001:
    def test_create_with_finally_unlink_clean(self, tmp_path):
        assert findings_for(tmp_path, {"m.py": SHM_GOOD}, rule="SHM001") == []

    def test_create_without_finally_unlink_flagged(self, tmp_path):
        found = findings_for(tmp_path, {"m.py": SHM_BAD_CREATE}, rule="SHM001")
        assert len(found) == 1
        assert found[0].line == 2

    def test_attacher_unlinking_flagged(self, tmp_path):
        found = findings_for(tmp_path, {"m.py": SHM_BAD_ATTACH}, rule="SHM001")
        assert len(found) == 1
        assert found[0].line == 4

    def test_attacher_closing_clean(self, tmp_path):
        assert findings_for(tmp_path, {"m.py": SHM_GOOD_ATTACH},
                            rule="SHM001") == []

    def test_shm_ok_pragma_suppresses_ownership_transfer(self, tmp_path):
        text = SHM_BAD_CREATE.replace(
            "SharedArrayBlock.create(payload)",
            "SharedArrayBlock.create(payload)  # shm-ok: caller unlinks")
        write_tree(tmp_path, {"m.py": text})
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings if f.rule == "SHM001"] == []


class TestObs001:
    def test_raw_clock_read_in_hot_path_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/engine.py": "import time\nt = time.perf_counter()\n",
        }, rule="OBS001")
        assert len(found) == 1
        assert found[0].line == 2
        assert "repro.obs.clock" in found[0].message

    def test_clock_seam_alias_is_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/engine.py": (
                "from repro.obs import clock as obs_clock\n"
                "t = obs_clock.perf_counter()\n"
                "m = obs_clock.monotonic()\n"
            ),
        }, rule="OBS001")
        assert found == []

    def test_non_hot_path_dirs_exempt(self, tmp_path):
        found = findings_for(tmp_path, {
            "bench/timing.py": "import time\nt = time.perf_counter()\n",
            "obs/clock.py": "import time\nt = time.monotonic()\n",
        }, rule="OBS001")
        assert found == []

    def test_monotonic_and_time_time_flagged_too(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/engine.py": (
                "import time\n"
                "a = time.monotonic()\n"
                "b = time.time()\n"
            ),
        }, rule="OBS001")
        assert sorted(f.line for f in found) == [2, 3]

    def test_obs_ok_pragma_suppresses(self, tmp_path):
        # One pragma per line: the standalone det-ok covers the read's why,
        # the trailing obs-ok its how — both findings suppressed.
        write_tree(tmp_path, {
            "core/engine.py": (
                "import time\n"
                "# det-ok: reporting only\n"
                "t = time.perf_counter()  # obs-ok: seam bootstrap\n"
            ),
        })
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings
                if f.rule in ("OBS001", "DET001")] == []
        assert report.suppressed_by_pragma == 2

    def test_complementary_to_det001(self, tmp_path):
        """A raw hot-path clock read trips both the why- and how-rules."""
        rules = sorted(f.rule for f in findings_for(tmp_path, {
            "core/engine.py": "import time\nt = time.perf_counter()\n",
        }))
        assert rules == ["DET001", "OBS001"]


class TestRobust001:
    def test_bare_recv_in_parallel_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/runtime.py": (
                "def wait(conn):\n"
                "    return conn.recv()\n"
            ),
        }, rule="ROBUST001")
        assert len(found) == 1
        assert found[0].line == 2
        assert "supervisor" in found[0].message

    def test_untimed_join_in_parallel_flagged(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/runtime.py": (
                "def stop(proc):\n"
                "    proc.terminate()\n"
                "    proc.join()\n"
            ),
        }, rule="ROBUST001")
        assert len(found) == 1
        assert found[0].line == 3
        assert "timeout" in found[0].message

    def test_timed_join_and_str_join_clean(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/runtime.py": (
                "def stop(proc, parts):\n"
                "    proc.join(timeout=5.0)\n"
                "    proc.join(5.0)\n"
                "    return ', '.join(parts)\n"
            ),
        }, rule="ROBUST001")
        assert found == []

    def test_outside_parallel_dir_exempt(self, tmp_path):
        found = findings_for(tmp_path, {
            "obs/listener.py": (
                "def wait(conn, proc):\n"
                "    proc.join()\n"
                "    return conn.recv()\n"
            ),
        }, rule="ROBUST001")
        assert found == []

    def test_robust_ok_pragma_suppresses_poll_guarded_recv(self, tmp_path):
        write_tree(tmp_path, {
            "parallel/runtime.py": (
                "def wait(conn):\n"
                "    if conn.poll(0.05):\n"
                "        return conn.recv()  # robust-ok: poll-guarded\n"
            ),
        })
        report = run_analysis([str(tmp_path)])
        assert [f for f in report.findings if f.rule == "ROBUST001"] == []
        assert report.suppressed_by_pragma == 1


class TestPragmaScanner:
    def test_scan_finds_tokens_and_reasons(self):
        lines = [
            "x = 1  # det-ok: reason here",
            "# alloc-ok: standalone reason",
            "y = 2",
            "z = 3  # det-ok",
        ]
        pragmas = scan_pragmas(lines, ("det-ok", "alloc-ok"))
        same_line = pragmas[1][0]
        assert same_line.token == "det-ok" and same_line.valid
        assert same_line.lines_covered() == [1]
        standalone = pragmas[2][0]
        assert standalone.standalone and standalone.valid
        assert standalone.lines_covered() == [2, 3]
        reasonless = pragmas[4][0]
        assert not reasonless.valid

    def test_unknown_tokens_ignored(self):
        assert scan_pragmas(["x  # noqa: E501"], ("det-ok",)) == {}


class TestParseErrors:
    def test_syntax_error_reported_as_parse001(self, tmp_path):
        found = findings_for(tmp_path, {"m.py": "def broken(:\n"})
        assert [f.rule for f in found] == ["PARSE001"]


class TestBaseline:
    def test_baseline_suppresses_matching_finding(self, tmp_path):
        write_tree(tmp_path, {"core/m.py": "import numpy as np\nrng = np.random.default_rng()\n"})
        first = run_analysis([str(tmp_path)])
        assert len(first.findings) == 1
        baseline = Baseline.from_findings(first.findings)
        second = run_analysis([str(tmp_path)], baseline=baseline)
        assert second.findings == []
        assert second.suppressed_by_baseline == 1
        assert second.stale_baseline_entries == []

    def test_stale_entry_expires(self, tmp_path):
        write_tree(tmp_path, {"core/m.py": "x = 1\n"})
        baseline = Baseline(entries=[BaselineEntry(
            rule="DET001", path=str(tmp_path / "core" / "m.py"),
            snippet="rng = np.random.default_rng()")])
        report = run_analysis([str(tmp_path)], baseline=baseline)
        assert len(report.stale_baseline_entries) == 1
        assert report.exit_code(strict=True) == 1
        assert report.exit_code(strict=False) == 0

    def test_save_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline(entries=[BaselineEntry(
            rule="XP001", path="src/m.py", snippet="np.sqrt(x)")])
        baseline.save(path)
        loaded = Baseline.load(path)
        assert [e.key() for e in loaded.entries] == [e.key() for e in baseline.entries]

    def test_committed_baseline_is_empty(self):
        committed = Baseline.load(SRC_ROOT.parent / "tools" / "analysis_baseline.json")
        assert committed.entries == []


class TestExitCodesAndReport:
    def test_error_findings_exit_1_regardless_of_strict(self, tmp_path):
        write_tree(tmp_path, {"core/m.py": "import numpy as np\nrng = np.random.default_rng()\n"})
        report = run_analysis([str(tmp_path)])
        assert report.exit_code(strict=False) == 1
        assert report.exit_code(strict=True) == 1

    def test_warnings_exit_1_only_under_strict(self, tmp_path):
        write_tree(tmp_path, {"core/updates.py": ALLOC_LOOP})
        report = run_analysis([str(tmp_path)])
        assert all(f.severity == "warning" for f in report.findings)
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_json_report_schema(self, tmp_path):
        write_tree(tmp_path, {"core/m.py": "import numpy as np\nrng = np.random.default_rng()\n"})
        report = run_analysis([str(tmp_path)])
        payload = json.loads(report.format_json())
        assert payload["version"] == 1
        assert payload["files_analyzed"] == 1
        assert set(payload["counts"]) == {"error", "warning"}
        finding = payload["findings"][0]
        assert {"rule", "path", "line", "col", "severity", "message",
                "snippet"} <= set(finding)
        assert sorted(payload["rules"]) == payload["rules"]


class TestCli:
    def test_analyze_clean_tree_exits_0(self, tmp_path, capsys):
        write_tree(tmp_path, {"m.py": "x = 1\n"})
        assert analyze_main([str(tmp_path), "--strict"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_analyze_bad_tree_exits_1(self, tmp_path, capsys):
        write_tree(tmp_path, {"core/m.py": "import numpy as np\nrng = np.random.default_rng()\n"})
        assert analyze_main([str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_analyze_missing_path_exits_2(self, tmp_path, capsys):
        assert analyze_main([str(tmp_path / "nope")]) == 2

    def test_write_baseline_then_strict_clean(self, tmp_path, capsys):
        write_tree(tmp_path, {"core/m.py": "import numpy as np\nrng = np.random.default_rng()\n"})
        baseline_path = tmp_path / "baseline.json"
        assert analyze_main([str(tmp_path), "--write-baseline",
                             "--baseline", str(baseline_path)]) == 0
        assert analyze_main([str(tmp_path), "--strict",
                             "--baseline", str(baseline_path)]) == 0
        capsys.readouterr()

    def test_json_format_output(self, tmp_path, capsys):
        write_tree(tmp_path, {"m.py": "x = 1\n"})
        assert analyze_main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_real_src_tree_is_clean_under_strict(self, capsys):
        assert analyze_main([str(SRC_ROOT), "--strict", "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out


class TestRegistry:
    def test_duplicate_rule_registration_rejected(self):
        registry = CheckerRegistry()

        @checker("X001", pragma="x-ok", registry=registry)
        def first(src):
            return []

        with pytest.raises(DuplicateCheckerError):
            @checker("X001", pragma="x-ok", registry=registry)
            def second(src):
                return []

    def test_unknown_rule_lookup_rejected(self):
        registry = CheckerRegistry()
        with pytest.raises(UnknownCheckerError):
            registry.get("NOPE001")
