"""High-level public API: lay out a pangenome graph with one call.

:func:`layout_graph` is the entry point most users (and the examples) need:
pick an engine, hand it a graph in any supported representation, get a
:class:`~repro.core.base.LayoutResult` back. The individual engine classes
remain available for experiments that need their extra knobs.
"""
from __future__ import annotations

from typing import Optional, Union

from ..graph.lean import LeanGraph
from ..graph.variation_graph import VariationGraph
from .base import LayoutResult
from .batch_engine import BatchedLayoutEngine
from .cpu_baseline import CpuBaselineEngine, SerialReferenceEngine
from .gpu_kernel import GpuKernelConfig, OptimizedGpuEngine
from .params import LayoutParams

__all__ = ["ENGINES", "layout_graph", "make_engine"]

ENGINES = ("cpu", "serial", "batch", "gpu", "gpu-base")
"""Engine names accepted by :func:`layout_graph`."""


def _as_lean(graph: Union[VariationGraph, LeanGraph]) -> LeanGraph:
    if isinstance(graph, LeanGraph):
        return graph
    if isinstance(graph, VariationGraph):
        return LeanGraph.from_variation_graph(graph)
    raise TypeError(
        "graph must be a VariationGraph or LeanGraph, got " + type(graph).__name__
    )


def make_engine(
    graph: Union[VariationGraph, LeanGraph],
    engine: str = "cpu",
    params: Optional[LayoutParams] = None,
    gpu_config: Optional[GpuKernelConfig] = None,
):
    """Construct (but do not run) the requested layout engine.

    Parameters
    ----------
    graph:
        The pangenome graph to lay out.
    engine:
        ``"cpu"`` — Hogwild-emulating CPU baseline (odgi-layout);
        ``"serial"`` — exact serial reference (small graphs only);
        ``"batch"`` — PyTorch-style batched engine;
        ``"gpu"`` — optimized GPU kernel (all optimisations on);
        ``"gpu-base"`` — base CUDA kernel (no optimisations).
    params:
        Layout hyper-parameters; defaults to :class:`LayoutParams`.
    gpu_config:
        Optional kernel configuration for the ``"gpu"`` engine.
    """
    lean = _as_lean(graph)
    params = params if params is not None else LayoutParams()
    if engine == "cpu":
        return CpuBaselineEngine(lean, params)
    if engine == "serial":
        return SerialReferenceEngine(lean, params)
    if engine == "batch":
        return BatchedLayoutEngine(lean, params)
    if engine == "gpu":
        cfg = gpu_config if gpu_config is not None else GpuKernelConfig()
        return OptimizedGpuEngine(lean, params, cfg)
    if engine == "gpu-base":
        cfg = gpu_config if gpu_config is not None else GpuKernelConfig.baseline()
        return OptimizedGpuEngine(lean, params, cfg)
    raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")


def layout_graph(
    graph: Union[VariationGraph, LeanGraph],
    engine: str = "cpu",
    params: Optional[LayoutParams] = None,
    gpu_config: Optional[GpuKernelConfig] = None,
) -> LayoutResult:
    """Compute a 2-D layout of ``graph`` with the chosen engine.

    When ``params.levels > 1`` the run goes through the multilevel V-cycle
    driver (:class:`repro.multilevel.MultilevelDriver`), which coarsens the
    graph and runs the chosen engine per hierarchy level; ``levels=1`` (the
    default) is the flat engine untouched.

    Examples
    --------
    >>> from repro.synth import hla_drb1_like
    >>> from repro.core import layout_graph, LayoutParams
    >>> graph = hla_drb1_like(scale=0.05)
    >>> result = layout_graph(graph, engine="gpu",
    ...                       params=LayoutParams(iter_max=5, steps_per_step_unit=1.0))
    >>> result.layout.coords.shape[0] == 2 * graph.n_nodes
    True
    """
    if params is not None and params.levels > 1:
        # Runtime import: multilevel depends on core, never the reverse.
        from ..multilevel.driver import MultilevelDriver

        return MultilevelDriver(_as_lean(graph), params, engine=engine,
                                gpu_config=gpu_config).run()
    return make_engine(graph, engine, params, gpu_config).run()
