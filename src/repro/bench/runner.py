"""Suite runner: execute registered benchmark cases and emit result documents.

The runner owns everything the individual cases must not care about: suite
resolution, warmup/repeat wall-time measurement, metric-determinism checking
across repeats, progress reporting, optional per-case cProfile artifacts
(``--profile``), and assembling the schema-versioned result document written
to ``BENCH_<suite>.json``.
"""
from __future__ import annotations

import os
import sys
import time
from typing import Callable, Dict, List, Optional

from .context import DEFAULT_MASTER_SEED, BenchContext
from .env import environment_fingerprint
from .registry import (
    BenchCase,
    BenchError,
    BenchRegistry,
    CaseResult,
    load_builtin_cases,
    metrics_as_plain,
)
from .schema import SCHEMA_VERSION, default_output_path, metric_values, write_results

__all__ = ["run_suite", "run_case", "SuiteRunError"]


class SuiteRunError(BenchError):
    """A case failed, or repeats disagreed on supposedly deterministic metrics."""


def _measure(case: BenchCase, ctx: BenchContext, warmup: int,
             repeats: int) -> tuple[CaseResult, List[float]]:
    """Run one case ``warmup + repeats`` times; verify metric determinism."""
    for _ in range(warmup):
        case.run(ctx)
    times: List[float] = []
    result: Optional[CaseResult] = None
    for repeat in range(repeats):
        t0 = time.perf_counter()
        current = case.run(ctx)
        times.append(time.perf_counter() - t0)
        if result is not None:
            # Measured wall-clock metrics (deterministic=False) legitimately
            # vary between repeats; only the modelled metrics are held to the
            # byte-identity contract.
            previous = {k: m.value for k, m in result.metrics.items()
                        if m.deterministic}
            observed = {k: m.value for k, m in current.metrics.items()
                        if m.deterministic}
            if previous != observed:
                drift = sorted(k for k in set(previous) | set(observed)
                               if previous.get(k) != observed.get(k))
                raise SuiteRunError(
                    f"case {case.name!r} is nondeterministic across repeats "
                    f"(repeat {repeat + 1} changed metrics: {drift}); every "
                    "stochastic choice must come from ctx.seed_for/ctx.rng"
                )
        result = current
    assert result is not None
    return result, times


#: Lines of the cumulative-time ranking written per profiled case.
_PROFILE_TOP = 40


def _profile_case(case: BenchCase, ctx: BenchContext, directory: str) -> str:
    """Run ``case`` once under cProfile; write a summary artifact, return its path.

    The artifact is a plain-text cumulative-time ranking (top
    :data:`_PROFILE_TOP` functions) — enough to see *where* a dispatch
    regression lives (per-batch sampler round trips, PRNG call loops,
    backend seam crossings) straight from a CI artifact, without rerunning
    anything locally — plus the profiled run's peak RSS
    (:class:`repro.memtrack.PeakTracker`), so a memory blow-up shows in the
    same forensics file as the time ranking.
    """
    import cProfile
    import io
    import pstats

    from ..memtrack import PeakTracker

    profiler = cProfile.Profile()
    mem = PeakTracker(trace=False).start()
    profiler.enable()
    try:
        case.run(ctx)
    finally:
        profiler.disable()
        mem.stop()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{case.name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"cProfile summary: case={case.name} "
                     f"(top {_PROFILE_TOP} by cumulative time)\n")
        if mem.rss_peak_bytes is not None:
            handle.write(f"peak RSS: {mem.rss_peak_bytes} bytes "
                         f"({mem.rss_peak_bytes / 2**20:.1f} MiB, process "
                         "high-water)\n")
        handle.write(buffer.getvalue())
    return path


def profile_dir_for(out_path: str) -> str:
    """Directory the per-case profile artifacts go to for ``out_path``."""
    root, _ = os.path.splitext(out_path)
    return f"{root}_profile"


def run_case(
    name: str,
    master_seed: int = DEFAULT_MASTER_SEED,
    registry: Optional[BenchRegistry] = None,
    echo: Callable[[str], None] = print,
) -> CaseResult:
    """Execute one registered case by name (the ``__main__`` shim entry)."""
    if registry is None:
        registry = load_builtin_cases()
    case = registry.get(name)
    ctx = BenchContext(master_seed=master_seed)
    result = case.run(ctx)
    for table in result.tables:
        echo(table)
    return result


def run_suite(
    suite: str,
    master_seed: int = DEFAULT_MASTER_SEED,
    warmup: int = 0,
    repeats: int = 1,
    out_path: Optional[str] = None,
    registry: Optional[BenchRegistry] = None,
    echo: Callable[[str], None] = print,
    show_tables: bool = False,
    backend: Optional[str] = None,
    fused: Optional[bool] = None,
    profile: bool = False,
) -> Dict:
    """Run every case of ``suite`` and return (and optionally write) results.

    ``repeats >= 2`` both tightens the wall-time estimate and *proves* the
    determinism contract: any metric whose value changes between repeats
    aborts the run with :class:`SuiteRunError`. ``profile=True`` additionally
    runs each case once under cProfile and writes one summary artifact per
    case to ``<out>_profile/`` (the profiled run is extra — it never feeds
    the recorded wall times).
    """
    if warmup < 0 or repeats < 1:
        raise ValueError("warmup must be >= 0 and repeats >= 1")
    if registry is None:
        registry = load_builtin_cases()
    cases = registry.suite(suite)
    if not cases:
        raise SuiteRunError(f"suite {suite!r} resolved to zero cases")

    ctx = BenchContext(master_seed=master_seed, backend=backend, fused=fused)
    echo(f"bench run: suite={suite} cases={len(cases)} master_seed={master_seed} "
         f"warmup={warmup} repeats={repeats} backend={ctx.backend_name}")
    profile_dir = None
    if profile:
        profile_dir = profile_dir_for(out_path if out_path
                                      else default_output_path(suite))

    case_docs = []
    suite_t0 = time.perf_counter()
    for position, case in enumerate(cases, start=1):
        echo(f"[{position}/{len(cases)}] {case.name} ({case.source or 'no source'}) ...")
        t0 = time.perf_counter()
        try:
            result, times = _measure(case, ctx, warmup, repeats)
        except SuiteRunError:
            raise
        except AssertionError as exc:
            raise SuiteRunError(
                f"case {case.name!r} failed its reproduction-shape assertions: {exc}"
            ) from exc
        elapsed = time.perf_counter() - t0
        if profile_dir is not None:
            artifact = _profile_case(case, ctx, profile_dir)
            echo(f"    profile -> {artifact}")
        if show_tables:
            for table in result.tables:
                echo(table)
        echo(f"    done in {elapsed:.2f}s "
             f"({len(result.metrics)} metrics, min wall {min(times):.3f}s)")
        case_docs.append({
            "name": case.name,
            "source": case.source,
            "suites": sorted(case.suites),
            "wall_time": {
                "repeats": repeats,
                "times_s": [round(t, 6) for t in times],
                "min_s": round(min(times), 6),
                "mean_s": round(sum(times) / len(times), 6),
            },
            "metrics": metrics_as_plain(result.metrics),
            "graph_properties": dict(sorted(result.graph_properties.items())),
        })

    doc = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "master_seed": master_seed,
        "environment": environment_fingerprint(),
        # ``backend`` is runner metadata, not part of the timing-environment
        # fingerprint: documents produced before the key existed still
        # compare cleanly against new ones. ``fused`` is recorded only when
        # explicitly overridden, for the same reason.
        "runner": {"warmup": warmup, "repeats": repeats,
                   "backend": ctx.backend_name,
                   **({"fused": fused} if fused is not None else {})},
        "cases": case_docs,
    }
    echo(f"suite {suite!r} complete in {time.perf_counter() - suite_t0:.2f}s: "
         f"{sum(len(c['metrics']) for c in case_docs)} metrics over {len(cases)} cases")
    if out_path is None:
        out_path = default_output_path(suite)
    if out_path:
        write_results(doc, out_path)
        echo(f"wrote {out_path}")
    return doc


def deterministic_payload(doc: Dict) -> Dict[str, Dict[str, float]]:
    """The portion of a result document required to be run-invariant."""
    return metric_values(doc)


def _main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Minimal direct entry (``python -m repro.bench.runner <suite>``)."""
    suite = (argv or sys.argv[1:] or ["smoke"])[0]
    run_suite(suite)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
