"""Table IV — CUDA kernel-launch overhead of the PyTorch-style engine.

Counts the tensor-op kernel launches required per batch size and the modelled
fraction of time spent in launch overhead, reproducing the paper's
observation that small batches spend most of their time in the CUDA API
(76.4% at 100K) while large batches amortise it (2.1% at 10M). The optimized
CUDA kernel launches only iter_max+1 kernels in total.
"""
from __future__ import annotations

from ...core import BatchedLayoutEngine, OptimizedGpuEngine
from ..registry import CaseResult, bench_case
from ..tables import format_table

BATCH_SIZES = [256, 2048, 16384]


@bench_case("table04_kernel_launches", source="Table IV", suites=("tables",))
def run(ctx) -> CaseResult:
    """Kernel launches amortise with batch size; the custom kernel needs ~none."""
    graph = ctx.mhc_graph
    params = ctx.bench_params

    results = {}
    for batch_size in BATCH_SIZES:
        engine = BatchedLayoutEngine(graph, params.with_(batch_size=batch_size))
        engine.run()
        results[batch_size] = (
            engine.op_profile.total_launches,
            engine.op_profile.api_overhead_fraction,
        )

    gpu_engine = OptimizedGpuEngine(graph, params)
    optimized_launches = gpu_engine.kernel_launches()

    rows = []
    launches_list = []
    overhead_list = []
    for batch_size, (launches, overhead) in results.items():
        launches_list.append(launches)
        overhead_list.append(overhead)
        rows.append([batch_size, launches, f"{overhead:.1%}"])
    rows.append(["optimized CUDA kernel", optimized_launches, "-"])

    # Kernel launches are inversely proportional to batch size.
    assert launches_list[0] > launches_list[1] > launches_list[2]
    assert launches_list[0] > 4 * launches_list[2]
    # API overhead fraction shrinks with the batch size.
    assert overhead_list[0] > overhead_list[-1]
    # The custom kernel launches orders of magnitude fewer kernels (Sec. V-A).
    assert optimized_launches < launches_list[-1] / 10
    assert optimized_launches == params.iter_max + 1

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("small_batch_launches", launches_list[0], direction="info")
    out.add("large_batch_launches", launches_list[-1], direction="info")
    out.add("small_batch_api_overhead", overhead_list[0], unit="frac", direction="info")
    out.add("large_batch_api_overhead", overhead_list[-1], unit="frac", direction="lower")
    out.add("optimized_kernel_launches", optimized_launches, direction="lower")

    out.tables.append(format_table(
        ["Batch size", "Kernel launches", "CUDA API time share"],
        rows,
        title="Table IV: kernel launching overhead (PyTorch-style engine vs optimized kernel)",
    ))
    return out
