"""Layout rendering: SVG export and raster comparison (odgi draw stand-in)."""
from .svg import render_svg, save_svg
from .raster import rasterize, layout_similarity, write_ppm

__all__ = ["render_svg", "save_svg", "rasterize", "layout_similarity", "write_ppm"]
