"""Pytest shim for the table11_warp_merging benchmark case.

The case body lives in :mod:`repro.bench.cases.table11_warp_merging`. Run it directly
with ``python benchmarks/bench_table11_warp_merging.py``, through ``pytest
benchmarks/bench_table11_warp_merging.py``, or as part of ``repro bench run``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.table11_warp_merging import run as case_run

_CASE = case_run.case


@pytest.mark.paper_table(_CASE.source)
def test_table11_warp_merging(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
