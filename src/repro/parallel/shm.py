"""Process-parallel hogwild layout over POSIX shared memory.

This is the *measured* realisation of the race that
:mod:`repro.parallel.hogwild` models and the CPU-baseline engine emulates:
the coordinate array lives in one ``multiprocessing.shared_memory`` segment,
``params.workers`` OS processes each run the fused per-iteration path
(:meth:`~repro.backend.base.ArrayBackend.run_iteration`) over a disjoint
contiguous slice of the iteration's batch plan
(:func:`~repro.core.fused.slice_plan`), and every worker scatters its merged
deltas straight into the shared buffer — no locks, last-store-wins at the
byte level, exactly the Hogwild! regime of the paper's CPU baseline
(Sec. III-A) and of odgi-layout itself.

Seed / stream contract
----------------------
Worker ``0`` draws from *the same* Xoshiro256+ streams the flat
:class:`~repro.core.cpu_baseline.CpuBaselineEngine` would construct
(``Xoshiro256Plus(params.seed, n_streams)``); workers ``1..W-1`` draw from
``n_streams`` additional streams appended via
:meth:`~repro.prng.xoshiro.Xoshiro256Plus.jump_streams`, seeded with
``derive_seed(params.seed, "shm-workers")``. Consequences, both pinned by
the test-suite:

* ``workers=1`` runs the full plan on the base streams — **byte-identical**
  to the flat engine (which is itself byte-identical fused vs unfused on the
  NumPy backend);
* ``workers=N`` draws are decorrelated across workers and fully determined
  by ``params.seed`` — only the store interleaving is racy, never the
  sampled terms.

Recovery (degrade / restart) mints *additional* streams under
``derive_seed(params.seed, "shm-respawn")`` and
``derive_seed(params.seed, "shm-degrade")`` — never the dead worker's
streams, whose crashed half-iteration consumed an unknowable prefix.

Supervision
-----------
All barriers route through :class:`~repro.parallel.supervise.WorkerSupervisor`
— the parent never calls a bare ``Connection.recv()`` or an untimed
``Process.join()`` (the ROBUST001 contract). A worker that dies or stalls
surfaces as a typed :class:`~repro.parallel.supervise.ParallelRuntimeError`
and is resolved per ``params.on_worker_failure``: ``fail`` raises promptly,
``degrade`` re-slices the dead worker's plan across survivors (workers
accept ``("extend", plan, state)`` messages mid-run for exactly this), and
``restart`` respawns the slot with fresh streams before degrading. The
seeded chaos harness lives in :mod:`repro.parallel.faults`; workers fire
the run's :class:`~repro.parallel.faults.FaultPlan` (engine hook or
``REPRO_FAULTS``) at setup (``iteration=-1``) and at each iteration start.

Shared-memory lifecycle
-----------------------
The parent ``create()``\\ s one segment holding the coordinate array plus the
five :class:`~repro.core.selection.SelectionArrays` (graph data ships once,
via the segment — never pickled per batch); workers ``attach()`` by name and
``close()`` their mapping on exit; the parent alone ``unlink()``\\ s, inside a
``finally`` that also escalates straggler teardown
(``terminate()`` → ``kill()``, counted in ``workers_killed``), so a crashed
run leaves no segment and no process behind. Re-registration of the same
segment by every attaching process is harmless: the resource tracker's
registry is a set, and only the parent ever unregisters it (via ``unlink``).

Workers are long-lived — one process per worker for the whole run, fed one
message per iteration over a pipe — so each worker's PRNG streams advance
across iterations exactly like the flat engine's single generator does.
"""
from __future__ import annotations

import multiprocessing as mp
import os
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.base import LayoutResult
from ..core.cpu_baseline import CpuBaselineEngine
from ..core.fused import build_iteration_plans, chunk_spans, slice_plan
from ..core.layout import Layout, initialize_layout
from ..core.params import LayoutParams
from ..core.selection import PairSampler, SelectionArrays
from ..core.updates import UpdateWorkspace
from ..obs import clock as obs_clock
from ..obs.ring import RingTracer, TraceRing, ring_capacity, ring_keys, \
    ring_payload
from ..obs.trace_file import merge_events, write_trace
from ..obs.tracer import NULL_TRACER
from ..prng.splitmix import SplitMix64, derive_seed, expand_streams
from ..prng.xoshiro import Xoshiro256Plus
from .faults import FaultPlan, resolve_fault_plan
from .supervise import DEFAULT_BARRIER_TIMEOUT, DEFAULT_JOIN_TIMEOUT, \
    DEFAULT_READY_TIMEOUT, WorkerSupervisor

__all__ = [
    "SharedArrayBlock",
    "ShmHogwildEngine",
    "budget_share",
    "worker_stream_states",
    "recovery_stream_states",
    "run_workers_inline",
    "resolve_start_method",
]

#: Environment variable selecting the multiprocessing start method
#: (``fork`` / ``spawn`` / ``forkserver``). CI's parallel job sets ``spawn``
#: to exercise the pickling seams; the default prefers ``fork`` where the
#: platform offers it because it skips the interpreter re-import per worker.
START_METHOD_ENV = "REPRO_SHM_START"

_ALIGN = 16

#: Picklable description of one packed array: (key, dtype string, shape,
#: byte offset into the segment).
Manifest = List[Tuple[str, str, Tuple[int, ...], int]]


def resolve_start_method(explicit: Optional[str] = None) -> str:
    """Start method for worker processes: explicit > env > platform default."""
    method = explicit or os.environ.get(START_METHOD_ENV)
    if method:
        if method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {method!r} unavailable on this platform; "
                f"choose from {mp.get_all_start_methods()}")
        return method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class SharedArrayBlock:
    """Named NumPy arrays packed into one shared-memory segment.

    ``create()`` (parent) lays the arrays out back to back, 16-byte aligned,
    and copies them in; ``attach()`` (worker) maps the same segment and
    rebuilds zero-copy views from the picklable :data:`Manifest`. Views are
    plain ``np.ndarray`` objects backed by the mapping, so in-place writes
    (the hogwild scatter) are immediately visible to every process.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: Manifest,
                 owner: bool):
        self._shm = shm
        self.manifest = manifest
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in manifest:
            arr = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=shm.buf, offset=offset)
            self._views[key] = arr

    # ----------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedArrayBlock":
        """Allocate a segment sized for ``arrays`` and copy them in."""
        manifest: Manifest = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN
            manifest.append((key, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        block = cls(shm, manifest, owner=True)
        for key, arr in arrays.items():
            block._views[key][...] = arr
        return block

    @classmethod
    def attach(cls, name: str, manifest: Manifest) -> "SharedArrayBlock":
        """Map an existing segment by name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, manifest, owner=False)

    @property
    def name(self) -> str:
        """OS-level segment name workers attach by."""
        return self._shm.name

    def view(self, key: str) -> np.ndarray:
        """Zero-copy array view into the segment."""
        return self._views[key]

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self._views.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the OS (parent only, exactly once)."""
        if self._owner:
            self._shm.unlink()
            self._owner = False


def budget_share(memory_budget: Optional[int], workers: int) -> Optional[int]:
    """Per-worker slice of the run's memory budget.

    Workers run concurrently, so their transient footprints add up — each
    worker chunks its sub-plan under ``memory_budget // workers`` so the
    *sum* stays within the run's budget. ``None`` (no budget) passes
    through; the share is floored at one byte, which
    :func:`~repro.core.fused.chunk_spans` degrades to one segment per chunk
    (the footprint floor). Chunking never moves a sampled term, so any
    share keeps worker layouts byte-identical to their unbudgeted runs.
    """
    if memory_budget is None:
        return None
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return max(1, int(memory_budget) // int(workers))


def worker_stream_states(base: Xoshiro256Plus, workers: int,
                         seed: int) -> List[np.ndarray]:
    """Per-worker Xoshiro256+ state blocks under the shm seed contract.

    Worker 0 receives ``base``'s streams verbatim (the flat engine's
    generator — this is what makes ``workers=1`` byte-identical); each
    further worker receives ``base.n_streams`` decorrelated streams appended
    via ``jump_streams`` under the stable sub-seed
    ``derive_seed(seed, "shm-workers")``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return [base.state.copy()]
    n = base.n_streams
    jumped = base.jump_streams(n * (workers - 1),
                               seed=derive_seed(seed, "shm-workers"))
    return [jumped.state[w * n:(w + 1) * n].copy() for w in range(workers)]


def recovery_stream_states(seed: int, n_streams: int
                           ) -> Callable[[str, int], List[np.ndarray]]:
    """Mint fresh per-worker stream states for supervised recovery.

    Returns the ``fresh_states(kind, n)`` callback
    :class:`~repro.parallel.supervise.WorkerSupervisor` consumes. Each kind
    (``"respawn"`` / ``"degrade"``) holds one persistent SplitMix64
    expansion under a stable sub-seed of the master seed; every call emits
    only the expansion's next tail (:func:`~repro.prng.splitmix.
    expand_streams` — prefix-stable, so the states are exactly the slices a
    single grown :func:`~repro.prng.splitmix.seed_streams` call would
    yield, without re-deriving the prefix per failure). State blocks are
    therefore distinct across *every* call — a respawned worker never
    replays streams any earlier incarnation (or the original cohort)
    consumed.
    """
    gens = {"respawn": SplitMix64(derive_seed(seed, "shm-respawn"), 1),
            "degrade": SplitMix64(derive_seed(seed, "shm-degrade"), 1)}

    def fresh_states(kind: str, n: int) -> List[np.ndarray]:
        block = expand_streams(gens[kind], n * n_streams,
                               Xoshiro256Plus.STATE_WORDS)
        return [block[i * n_streams:(i + 1) * n_streams].copy()
                for i in range(n)]

    return fresh_states


def _selection_arrays_payload(arrays: SelectionArrays) -> Dict[str, np.ndarray]:
    return {f"sel/{field}": np.asarray(getattr(arrays, field))
            for field in SelectionArrays._fields}


def _build_unit(plan: List[int], state: np.ndarray, sampler: PairSampler,
                params: LayoutParams, share: Optional[int], tracer,
                backend) -> Tuple[Xoshiro256Plus, List]:
    """One execution unit: a generator plus its chunked iteration plans.

    A worker starts with a single unit (its contractual sub-plan) and gains
    one more per ``extend`` message it adopts from a degraded sibling —
    each adopted plan keeps its own streams and its own workspace-sized
    chunking under the same per-worker budget share.
    """
    rng = Xoshiro256Plus(state)
    workspace = UpdateWorkspace(max(plan), backend=backend)
    plans = build_iteration_plans(
        sampler=sampler, workspace=workspace, merge=params.merge_policy,
        plan=plan, n_streams=rng.n_streams, memory_budget=share,
        tracer=tracer)
    return rng, plans


def _worker_main(worker_id: int, shm_name: str, manifest: Manifest,
                 params: LayoutParams, sub_plan: List[int],
                 stream_state: np.ndarray, conn,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    """Worker loop: attach, rebuild the sampler, run fused sub-iterations.

    Runs in a child process (module-level so ``spawn`` can pickle it by
    reference). The graph never crosses the pickle boundary — selection
    arrays are views into the shared segment; only params, the sub-plan and
    a ``(n_streams, 4)`` PRNG state ride along in the spawn args.

    Besides ``iter`` and ``stop``, the loop accepts ``("extend", plan,
    state)`` — a degraded sibling's re-sliced share, adopted as an extra
    execution unit and acknowledged with ``("extended", id, n_chunks)``.
    An injected :class:`~repro.parallel.faults.FaultPlan` fires at setup
    (``iteration=-1``) and at the top of each iteration body.
    """
    from ..backend import get_backend

    faults = resolve_fault_plan(fault_plan)
    block = SharedArrayBlock.attach(shm_name, manifest)
    try:
        if faults:
            faults.fire(worker_id, -1)
        backend = get_backend(params.backend)
        coords = block.view("coords")
        arrays = SelectionArrays(
            *(block.view(f"sel/{field}") for field in SelectionArrays._fields))
        sampler = PairSampler.from_arrays(arrays, params, backend)
        # Tracing: the worker's spans land lock-free in its own ring inside
        # the shared segment (repro.obs.ring); the parent decodes after
        # join and merges all streams into one ordered trace file. No pipe
        # traffic, no per-event allocation in the iteration loop. A
        # respawned worker reattaches the same ring and its sequence
        # numbers continue from the shared control block.
        if params.trace:
            buf_key, ctl_key = ring_keys(worker_id)
            tracer = RingTracer(TraceRing(block.view(buf_key),
                                          block.view(ctl_key)))
        else:
            tracer = NULL_TRACER
        trace = tracer.enabled
        # Each worker chunks its plans under its share of the run budget
        # (workers race concurrently, so shares must sum to the budget). The
        # share is derived from params here rather than shipped as an extra
        # spawn arg — every worker computes the same figure.
        share = budget_share(params.memory_budget, params.workers)
        units = [_build_unit(sub_plan, stream_state, sampler, params, share,
                             tracer, backend)]
        conn.send(("ready", worker_id, len(units[0][1])))
        while True:
            msg = conn.recv()  # robust-ok: worker side of the pipe; parent liveness is the supervisor's concern, and a dead parent collapses this daemon anyway
            if msg[0] == "stop":
                break
            if msg[0] == "extend":
                _, extra_plan, extra_state = msg
                units.append(_build_unit(extra_plan, extra_state, sampler,
                                         params, share, tracer, backend))
                conn.send(("extended", worker_id, len(units[-1][1])))
                continue
            _, iteration, eta = msg
            if faults:
                faults.fire(worker_id, iteration)
            n_terms = 0
            n_collisions = 0
            t_iter = tracer.now() if trace else 0.0
            draw_s = 0.0
            disp_s = 0.0
            n_chunks = 0
            for rng, plans in units:
                n_chunks += len(plans)
                for chunk in plans:
                    c0 = tracer.now() if trace else 0.0
                    block_draws = rng.next_double_block(chunk.calls_per_iteration)  # mem-ok: chunk plans are bounded by the worker's budget share
                    c1 = tracer.now() if trace else 0.0
                    stats = backend.run_iteration(chunk, coords, block_draws,
                                                  eta, iteration)
                    if trace:
                        draw_s += c1 - c0
                        disp_s += tracer.now() - c1
                    n_terms += stats.n_terms
                    n_collisions += stats.n_point_collisions
            if trace:
                tracer.emit("draw", t_iter, draw_s, iteration,
                            count=n_chunks)
                tracer.emit("dispatch", t_iter, disp_s, iteration,
                            count=n_chunks)
                tracer.emit("iteration", t_iter, tracer.now() - t_iter,
                            iteration)
            conn.send((n_terms, n_collisions))
    finally:
        conn.close()
        block.close()


class ShmHogwildEngine(CpuBaselineEngine):
    """Real multi-process hogwild over a shared coordinate buffer.

    Subclasses :class:`CpuBaselineEngine` so the batch plan and the PRNG
    stream count are *exactly* the flat engine's — the parallel engine is a
    partition of the flat engine's work, not a different workload. The
    iteration loop is replaced wholesale: per iteration the parent sends the
    scheduled learning rate to every worker, the workers race their fused
    sub-plans into the shared buffer, and the parent collects the per-worker
    term/collision counts. Iteration boundaries are synchronised (the eta
    schedule must advance globally); stores within an iteration are not.

    All worker lifecycle — spawn, barriers, failure handling per
    ``params.on_worker_failure``, teardown escalation — is delegated to
    :class:`~repro.parallel.supervise.WorkerSupervisor`. The keyword-only
    constructor knobs (timeouts, restart backoff, ``fault_plan``) exist for
    the chaos suite; production runs take the defaults.

    Requires a host-resident backend (the shared mapping *is* the coordinate
    state) that advertises the fused iteration path.
    """

    name = "shm-hogwild"

    def __init__(self, graph, params: Optional[LayoutParams] = None,
                 hogwild_round: int = 64, start_method: Optional[str] = None,
                 *, fault_plan: Optional[FaultPlan] = None,
                 ready_timeout: float = DEFAULT_READY_TIMEOUT,
                 barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
                 join_timeout: float = DEFAULT_JOIN_TIMEOUT,
                 max_restarts: int = 2,
                 restart_backoff: float = 0.1):
        super().__init__(graph, params, hogwild_round=hogwild_round)
        self.start_method = resolve_start_method(start_method)
        self.fault_plan = fault_plan
        self.ready_timeout = ready_timeout
        self.barrier_timeout = barrier_timeout
        self.join_timeout = join_timeout
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        probe = np.zeros(1)
        if self.backend.from_host(probe) is not probe:
            raise ValueError(
                f"backend {self.backend.name!r} is not host-resident; the "
                "shared-memory engine needs coordinates mapped in host RAM")
        if not getattr(self.backend, "supports_fused_iteration", False):
            raise ValueError(
                f"backend {self.backend.name!r} does not advertise the fused "
                "iteration path the shm workers execute")

    # ------------------------------------------------------------- helpers
    def _worker_setup(self, layout: Layout):
        """Sub-plans, per-worker PRNG states and the shared block for a run."""
        steps_per_iter = self.params.steps_per_iteration(self.graph.total_steps)
        plan = self.batch_plan(steps_per_iter)
        sub_plans = slice_plan(plan, self.params.workers)
        states = worker_stream_states(self.make_rng(), len(sub_plans),
                                      self.params.seed)
        payload = {"coords": layout.coords}
        payload.update(_selection_arrays_payload(self.sampler.arrays))
        if self.params.trace:
            # One trace ring per worker, sized from the worker's own chunk
            # plan so a correctly behaving run never drops an event (a ring
            # holds every span the worker emits: 2 per chunk from the fused
            # host path + the draw/dispatch/iteration trio per iteration).
            # A degraded survivor emits more than its ring was sized for;
            # overflow is dropped and reported, never blocking.
            share = budget_share(self.params.memory_budget,
                                 self.params.workers)
            for w, sub_plan in enumerate(sub_plans):
                n_chunks = max(1, len(chunk_spans(sub_plan, share)))
                capacity = ring_capacity(max(1, self.params.iter_max),
                                         n_chunks)
                payload.update(ring_payload(w, capacity))
        block = SharedArrayBlock.create(payload)  # shm-ok: ownership transfers to run(), whose finally unlinks
        return sub_plans, states, block

    def _make_supervisor(self, block: SharedArrayBlock,
                         n_streams: int) -> WorkerSupervisor:
        """The supervised runtime for one run over ``block``."""
        params = self.params
        ctx = mp.get_context(self.start_method)
        # Resolve REPRO_FAULTS in the parent so the plan rides the spawn
        # args — workers see the identical schedule under every start
        # method, and the engine hook still wins over the env.
        fault_plan = resolve_fault_plan(self.fault_plan)

        def spawn(worker_id: int, plan: List[int], state: np.ndarray):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_id, block.name, block.manifest, params, plan,
                      state, child_conn, fault_plan),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            return proc, parent_conn

        return WorkerSupervisor(
            spawn, policy=params.on_worker_failure,
            fresh_states=recovery_stream_states(params.seed, n_streams),
            ready_timeout=self.ready_timeout,
            barrier_timeout=self.barrier_timeout,
            join_timeout=self.join_timeout,
            max_restarts=self.max_restarts,
            backoff_base=self.restart_backoff,
            tracer=self.tracer)

    # ------------------------------------------------------------------ run
    def run(self, initial: Optional[Layout] = None) -> LayoutResult:
        t_start = obs_clock.perf_counter()
        tracer = self.tracer
        trace = tracer.enabled
        params = self.params
        layout = (initial.copy() if initial is not None
                  else initialize_layout(self.graph, seed=params.seed,
                                         data_layout=self.data_layout()))
        t_sched = tracer.now() if trace else 0.0
        sub_plans, states, block = self._worker_setup(layout)
        n_workers = len(sub_plans)
        supervisor = self._make_supervisor(block, states[0].shape[0])
        total_terms = 0
        worker_events: List[List] = []
        dropped = 0
        try:
            supervisor.start(sub_plans, states)
            total_chunks = supervisor.await_ready()
            self.max_counter("fused_chunks", float(total_chunks))
            t_ready = obs_clock.perf_counter()
            self.add_counter("parallel_setup_s", t_ready - t_start)
            if trace:
                tracer.emit("schedule", t_sched, tracer.now() - t_sched,
                            count=n_workers)
            for iteration in range(params.iter_max):
                eta = float(self.schedule[iteration])
                t_iter = tracer.now() if trace else 0.0
                supervisor.send_iter(iteration, eta)
                n_collisions = 0
                n_terms_iter = 0
                for w, (terms, collisions) in supervisor.collect(iteration):
                    n_terms_iter += terms
                    n_collisions += collisions
                    # Labelled per-worker metrics: the flat counter view
                    # renders these as ``worker_terms{worker=N}``, alongside
                    # the label-free totals the summary() contract pins.
                    self.metrics.counter("worker_terms",
                                         worker=str(w)).add(float(terms))
                total_terms += n_terms_iter
                self.add_counter("point_collisions", float(n_collisions))
                # Dispatches per iteration track the *live* decomposition —
                # the figure shrinks and re-grows as degradation re-slices.
                self.add_counter("update_dispatches",
                                 float(supervisor.total_chunks()))
                if trace:
                    # The parent's iteration span covers the barrier-to-
                    # barrier wall time; per-worker spans live in the rings.
                    tracer.emit("iteration", t_iter, tracer.now() - t_iter,
                                iteration, count=supervisor.live_count())
                if self.on_progress is not None:
                    self.on_progress(iteration + 1, params.iter_max, {
                        "engine": self.name,
                        "eta": eta,
                        "terms": n_terms_iter,
                        "collisions": n_collisions,
                        "workers": supervisor.live_count(),
                    })
            self.add_counter("parallel_iterate_s",
                             obs_clock.perf_counter() - t_ready)
            # Graceful stop inside the try: workers must have joined before
            # the rings and the raced coordinates are read back (the
            # finally's shutdown() is then an idempotent no-op).
            supervisor.shutdown()
            layout.coords[...] = block.view("coords")
            if params.trace:
                # Decode the per-worker rings while the mapping is alive
                # (workers have joined, so each ring's producer is done).
                for w in range(n_workers):
                    buf_key, ctl_key = ring_keys(w)
                    ring = TraceRing(block.view(buf_key), block.view(ctl_key))
                    worker_events.append(
                        ring.events(labels=dict(tracer.labels,
                                                worker=str(w))))
                    dropped += ring.dropped
                    self.metrics.counter("trace_events", worker=str(w)).add(
                        float(ring.written))
        finally:
            # Idempotent: a no-op after the graceful path, the straggler
            # escalation (terminate -> kill, counted) after a raise.
            supervisor.shutdown()
            block.close()
            block.unlink()
            # Supervision counters land in the finally so a raised run
            # (policy "fail", exhausted recovery) still reports what the
            # supervisor saw — the chaos suite asserts on these after
            # catching the typed error.
            self.add_counter("effective_workers",
                             float(supervisor.live_count()))
            self.add_counter("worker_failures",
                             float(supervisor.worker_failures))
            self.add_counter("worker_restarts",
                             float(supervisor.worker_restarts))
            self.add_counter("workers_killed",
                             float(supervisor.workers_killed))
            if supervisor.degraded:
                self.add_counter("degraded", 1.0)
        self.add_counter("fused_iterations", float(params.iter_max))
        if params.trace:
            # One merged, ordered trace: the parent's own spans interleaved
            # with every worker's ring stream (t0-sorted, stable).
            write_trace(params.trace,
                        merge_events([tracer.events] + worker_events),
                        meta={
                            "engine": self.name,
                            "backend": self.backend.name,
                            "iterations": params.iter_max,
                            "workers": n_workers,
                        },
                        dropped=dropped)
        return LayoutResult(
            layout=layout,
            params=params,
            engine=self.name,
            iterations=params.iter_max,
            total_terms=total_terms,
            counters=self.metrics.counter_values(),
            wall_time_s=obs_clock.perf_counter() - t_start,
            metrics=self.metrics.snapshot(),
        )

    # ------------------------------------------------------------- inline
    def run_inline(self, initial: Optional[Layout] = None) -> LayoutResult:
        """The worker decomposition executed sequentially in-process.

        Runs every worker's fused sub-plan with its contractual PRNG streams,
        workers in index order within each iteration — one *valid*
        serialisation of the hogwild race, with no processes and therefore
        fully deterministic. Property tests quantify the worker
        decomposition against the serial layout through this path without
        inheriting scheduler noise; it is also the natural fallback on
        single-core boxes.
        """
        t_start = obs_clock.perf_counter()
        tracer = self.tracer
        trace = tracer.enabled
        params = self.params
        layout = (initial.copy() if initial is not None
                  else initialize_layout(self.graph, seed=params.seed,
                                         data_layout=self.data_layout()))
        t_sched = tracer.now() if trace else 0.0
        steps_per_iter = params.steps_per_iteration(self.graph.total_steps)
        plan = self.batch_plan(steps_per_iter)
        sub_plans = slice_plan(plan, params.workers)
        states = worker_stream_states(self.make_rng(), len(sub_plans),
                                      params.seed)
        coords = self.backend.from_host(layout.coords)
        rngs = [Xoshiro256Plus(state) for state in states]
        # Per-worker tracer views share the parent's event list but carry a
        # ``worker=N`` label — the inline analogue of the process path's
        # per-worker rings, same labelled stream, no merge step needed.
        wtracers = [tracer.bind(worker=str(w)) for w in range(len(sub_plans))]
        # Same decomposition the worker processes build: each worker's
        # sub-plan chunked under its share of the run's memory budget.
        share = budget_share(params.memory_budget, params.workers)
        worker_plans = [
            build_iteration_plans(sampler=self.sampler,
                                  workspace=UpdateWorkspace(max(sub_plan),
                                                            backend=self.backend),
                                  merge=params.merge_policy, plan=sub_plan,
                                  n_streams=rng.n_streams, memory_budget=share,
                                  tracer=wtracer)
            for sub_plan, rng, wtracer in zip(sub_plans, rngs, wtracers)
        ]
        total_chunks = sum(len(plans) for plans in worker_plans)
        self.max_counter("fused_chunks", float(total_chunks))
        if trace:
            tracer.emit("schedule", t_sched, tracer.now() - t_sched,
                        count=len(sub_plans))
        total_terms = 0
        for iteration in range(params.iter_max):
            eta = float(self.schedule[iteration])
            n_collisions = 0
            n_terms_iter = 0
            t_iter = tracer.now() if trace else 0.0
            for w, (rng, plans) in enumerate(zip(rngs, worker_plans)):
                wtracer = wtracers[w]
                t_w = wtracer.now() if trace else 0.0
                draw_s = 0.0
                disp_s = 0.0
                for chunk in plans:
                    c0 = wtracer.now() if trace else 0.0
                    block = rng.next_double_block(chunk.calls_per_iteration)  # mem-ok: chunk plans are bounded by the worker's budget share
                    c1 = wtracer.now() if trace else 0.0
                    stats = self.backend.run_iteration(chunk, coords, block,
                                                       eta, iteration)
                    if trace:
                        draw_s += c1 - c0
                        disp_s += wtracer.now() - c1
                    n_terms_iter += stats.n_terms
                    n_collisions += stats.n_point_collisions
                if trace:
                    wtracer.emit("draw", t_w, draw_s, iteration,
                                 count=len(plans))
                    wtracer.emit("dispatch", t_w, disp_s, iteration,
                                 count=len(plans))
            total_terms += n_terms_iter
            self.add_counter("point_collisions", float(n_collisions))
            self.add_counter("update_dispatches", float(total_chunks))
            if trace:
                tracer.emit("iteration", t_iter, tracer.now() - t_iter,
                            iteration, count=len(sub_plans))
            if self.on_progress is not None:
                self.on_progress(iteration + 1, params.iter_max, {
                    "engine": f"{self.name}-inline",
                    "eta": eta,
                    "terms": n_terms_iter,
                    "collisions": n_collisions,
                    "workers": len(sub_plans),
                })
        self.add_counter("fused_iterations", float(params.iter_max))
        self.add_counter("effective_workers", float(len(sub_plans)))
        if params.trace:
            write_trace(params.trace, tracer.events, meta={
                "engine": f"{self.name}-inline",
                "backend": self.backend.name,
                "iterations": params.iter_max,
                "workers": len(sub_plans),
            })
        return LayoutResult(
            layout=layout,
            params=params,
            engine=f"{self.name}-inline",
            iterations=params.iter_max,
            total_terms=total_terms,
            counters=self.metrics.counter_values(),
            wall_time_s=obs_clock.perf_counter() - t_start,
            metrics=self.metrics.snapshot(),
        )


def run_workers_inline(graph, params: Optional[LayoutParams] = None,
                       hogwild_round: int = 64,
                       initial: Optional[Layout] = None) -> LayoutResult:
    """Deterministic in-process execution of the worker decomposition.

    Convenience wrapper over :meth:`ShmHogwildEngine.run_inline` — see its
    docstring for the interleaving semantics.
    """
    engine = ShmHogwildEngine(graph, params, hogwild_round=hogwild_round)
    return engine.run_inline(initial=initial)
