"""Fig. 17 — design-space exploration of the warp-shuffle data-reuse schemes.

Sweeps the (data-reuse factor, step-reduction factor) schemes of the paper's
case study on the Chr.1-like and Chr.2-like graphs, measuring the modelled
speedup over the fully optimized kernel and the sampled path stress of the
actual layouts. Paper shape: higher reuse → more speedup but higher stress;
DRF=2 schemes remain good/satisfying while DRF=8 schemes turn poor; an extra
~1.5x speedup is attainable while preserving good quality.
"""
from __future__ import annotations

from ...core import GpuKernelConfig, OptimizedGpuEngine
from ...core.layout import Layout
from ...gpusim import RTX_A6000
from ...metrics import classify_quality, sampled_path_stress
from ..registry import CaseResult, bench_case
from ..tables import format_table

SCHEMES = [(1, 1.0), (2, 1.5), (4, 1.5), (2, 1.75), (4, 2.0), (8, 2.0), (8, 2.5)]


@bench_case("fig17_data_reuse_dse", source="Fig. 17", suites=("figures",))
def run(ctx) -> CaseResult:
    """Data reuse trades extra speedup against layout stress, as in the paper."""
    graphs = {"Chr.1-like": ctx.chr1_graph,
              "Chr.2-like": ctx.chromosome_graphs["Chr.2"]}
    params = ctx.quality_bench_params
    profile_seed = ctx.seed_for("fig17/profile")
    sps_seed = ctx.seed_for("fig17/sps")

    out = CaseResult(graph_properties=ctx.graph_properties(ctx.chr1_graph))
    for graph_name, graph in graphs.items():
        rng = ctx.rng(f"fig17/scramble/{graph_name}")
        scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))
        baseline_runtime = None
        baseline_stress = None
        entries = []
        for drf, srf in SCHEMES:
            cfg = GpuKernelConfig(data_reuse_factor=drf, step_reduction_factor=srf)
            engine = OptimizedGpuEngine(graph, params, cfg)
            profile = engine.profile(device=RTX_A6000, n_sample_terms=1024,
                                     seed=profile_seed)
            result = engine.run(initial=scrambled)
            sps = sampled_path_stress(result.layout, graph, samples_per_step=20,
                                      seed=sps_seed)
            if (drf, srf) == (1, 1.0):
                baseline_runtime = profile.runtime_s
                baseline_stress = max(sps.value, 1e-9)
            entries.append(((drf, srf), profile.runtime_s, sps.value))

        table_rows = []
        speedups = {}
        stresses = {}
        for (drf, srf), runtime, sps_value in entries:
            speedup = baseline_runtime / runtime
            quality = classify_quality(sps_value, baseline_stress)
            speedups[(drf, srf)] = speedup
            stresses[(drf, srf)] = sps_value
            table_rows.append([f"({drf}, {srf})", f"{speedup:.2f}x", f"{sps_value:.3g}",
                               quality.value])
        out.tables.append(format_table(
            ["Scheme (DRF, SRF)", "Normalized speedup", "Sampled path stress", "Quality"],
            table_rows,
            title=f"Fig. 17: data-reuse design space on {graph_name} "
                  f"(baseline stress {baseline_stress:.3g})",
        ))
        # Shape assertions (the paper's trade-off frontier): reuse schemes are
        # faster than the (1,1) baseline, the most aggressive scheme is the
        # fastest and attains the paper's ~1.5x-or-better extra speedup, and
        # stress grows with reuse aggressiveness — mild reuse (DRF=2) sits in
        # the attractive corner with far lower stress than DRF=8 schemes.
        assert speedups[(8, 2.5)] > speedups[(2, 1.5)] > 1.0
        assert speedups[(2, 1.5)] > 1.3
        assert speedups[(8, 2.5)] > 1.8
        assert stresses[(8, 2.5)] > stresses[(2, 1.5)]
        assert stresses[(8, 2.0)] >= stresses[(2, 1.5)]
        assert stresses[(2, 1.5)] < stresses[(8, 2.5)] / 5.0

        key = graph_name.replace(".", "").replace("-like", "").lower()
        out.add(f"{key}_speedup_drf2", speedups[(2, 1.5)], unit="x", direction="higher")
        out.add(f"{key}_speedup_drf8", speedups[(8, 2.5)], unit="x", direction="higher")
        out.add(f"{key}_stress_drf2", stresses[(2, 1.5)], direction="info")
        out.add(f"{key}_stress_drf8", stresses[(8, 2.5)], direction="info")
    return out
