"""Property-based invariants of the compacted update merge (hypothesis).

These complement the example-based hot-path tests with randomised
adversarial batches: arbitrary endpoint collisions, zero reference
distances, degenerate self-pairs. Invariants checked:

* ``accumulate`` and ``hogwild`` merges are independent of term order
  (``last_writer`` is order-dependent *by definition* — it models a store
  race — so it is excluded);
* points not touched by the batch never move, bit-for-bit;
* the collision counter is exactly ``2·batch − #touched`` and therefore
  bounded by ``2·batch − 1``;
* ``compact_points`` is a faithful compaction: reconstruction through
  ``inverse`` reproduces the input and ``counts`` sums to its size.

``hypothesis`` is an optional dev dependency: when it is not installed the
module skips at collection time, keeping the tier-1 suite runnable from the
runtime-only install.
"""
from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core import StepBatch, UpdateWorkspace, apply_batch, compact_points  # noqa: E402

#: Generous per-example budget: CI boxes under load miss the default 200 ms.
COMMON_SETTINGS = settings(deadline=None, max_examples=60)


@st.composite
def batches(draw):
    """A StepBatch over a small synthetic point space, plus its node count."""
    n_nodes = draw(st.integers(min_value=2, max_value=12))
    n_terms = draw(st.integers(min_value=1, max_value=48))
    ints = st.integers(min_value=0, max_value=n_nodes - 1)
    bits = st.integers(min_value=0, max_value=1)
    # Either exactly zero (the no-gradient path) or a sane distance: subnormal
    # d_ref merely saturates μ at 1 with a benign overflow warning, which
    # would drown real failures in noise.
    dist = st.one_of(st.just(0.0),
                     st.floats(min_value=1e-3, max_value=100.0,
                               allow_nan=False, allow_infinity=False))
    node_i = draw(st.lists(ints, min_size=n_terms, max_size=n_terms))
    node_j = draw(st.lists(ints, min_size=n_terms, max_size=n_terms))
    vis_i = draw(st.lists(bits, min_size=n_terms, max_size=n_terms))
    vis_j = draw(st.lists(bits, min_size=n_terms, max_size=n_terms))
    d_ref = draw(st.lists(dist, min_size=n_terms, max_size=n_terms))
    batch = StepBatch(
        path=np.zeros(n_terms, dtype=np.int64),
        flat_i=np.zeros(n_terms, dtype=np.int64),
        flat_j=np.zeros(n_terms, dtype=np.int64),
        node_i=np.asarray(node_i, dtype=np.int64),
        node_j=np.asarray(node_j, dtype=np.int64),
        vis_i=np.asarray(vis_i, dtype=np.int64),
        vis_j=np.asarray(vis_j, dtype=np.int64),
        d_ref=np.asarray(d_ref, dtype=np.float64),
        in_cooling=np.zeros(n_terms, dtype=bool),
    )
    return batch, n_nodes


def _coords_for(n_nodes: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-50.0, 50.0, size=(2 * n_nodes, 2))


def _permuted(batch: StepBatch, perm: np.ndarray) -> StepBatch:
    return StepBatch(
        path=batch.path[perm], flat_i=batch.flat_i[perm],
        flat_j=batch.flat_j[perm], node_i=batch.node_i[perm],
        node_j=batch.node_j[perm], vis_i=batch.vis_i[perm],
        vis_j=batch.vis_j[perm], d_ref=batch.d_ref[perm],
        in_cooling=batch.in_cooling[perm],
    )


@COMMON_SETTINGS
@given(data=batches(), eta=st.floats(min_value=1e-3, max_value=10.0),
       perm_seed=st.integers(min_value=0, max_value=2**31 - 1))
@pytest.mark.parametrize("merge", ["accumulate", "hogwild"])
def test_merge_is_term_order_independent(merge, data, eta, perm_seed):
    batch, n_nodes = data
    perm = np.random.default_rng(perm_seed).permutation(len(batch))
    base = _coords_for(n_nodes, seed=1)
    a = base.copy()
    b = base.copy()
    stats_a = apply_batch(a, batch, eta, merge=merge)
    stats_b = apply_batch(b, _permuted(batch, perm), eta, merge=merge)
    np.testing.assert_allclose(a, b, atol=1e-8, rtol=1e-9)
    assert stats_a.n_point_collisions == stats_b.n_point_collisions


@COMMON_SETTINGS
@given(data=batches(), eta=st.floats(min_value=1e-3, max_value=10.0))
@pytest.mark.parametrize("merge", ["accumulate", "hogwild", "last_writer"])
def test_untouched_points_never_move(merge, data, eta):
    batch, n_nodes = data
    coords = _coords_for(n_nodes, seed=2)
    before = coords.copy()
    apply_batch(coords, batch, eta, merge=merge)
    touched = np.unique(np.concatenate([
        2 * batch.node_i + batch.vis_i,
        2 * batch.node_j + batch.vis_j,
    ]))
    untouched = np.setdiff1d(np.arange(2 * n_nodes), touched)
    # Bit-for-bit: the merge must not even rewrite unchanged values.
    np.testing.assert_array_equal(coords[untouched], before[untouched])


@COMMON_SETTINGS
@given(data=batches(), eta=st.floats(min_value=1e-3, max_value=10.0))
@pytest.mark.parametrize("merge", ["accumulate", "hogwild", "last_writer"])
def test_collision_count_bounded_by_batch(merge, data, eta):
    batch, n_nodes = data
    n = len(batch)
    coords = _coords_for(n_nodes, seed=3)
    stats = apply_batch(coords, batch, eta, merge=merge)
    endpoints = np.concatenate([
        2 * batch.node_i + batch.vis_i,
        2 * batch.node_j + batch.vis_j,
    ])
    expected = endpoints.size - np.unique(endpoints).size
    assert stats.n_point_collisions == expected
    assert 0 <= stats.n_point_collisions <= 2 * n - 1
    assert stats.n_terms == n


@COMMON_SETTINGS
@given(points=st.lists(st.integers(min_value=0, max_value=40),
                       min_size=1, max_size=120))
def test_compact_points_is_faithful(points):
    arr = np.asarray(points, dtype=np.int64)
    uniq, inverse, counts = compact_points(arr)
    np.testing.assert_array_equal(uniq[inverse], arr)
    np.testing.assert_array_equal(np.sort(uniq), uniq)
    assert uniq.size == np.unique(arr).size
    assert int(counts.sum()) == arr.size
    assert (counts >= 1).all()


@COMMON_SETTINGS
@given(data=batches(), eta=st.floats(min_value=1e-3, max_value=10.0))
def test_workspace_reuse_is_transparent(data, eta):
    """A shared grown/reused workspace never changes the result."""
    batch, n_nodes = data
    base = _coords_for(n_nodes, seed=4)
    a = base.copy()
    b = base.copy()
    ws = UpdateWorkspace(1)  # deliberately undersized: must grow on demand
    apply_batch(a, batch, eta, workspace=ws)
    apply_batch(b, batch, eta)
    np.testing.assert_array_equal(a, b)
