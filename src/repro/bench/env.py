"""Environment fingerprint embedded in every benchmark result file.

The fingerprint answers "were these two result files produced under
comparable conditions?" — ``repro bench compare`` prints a warning when the
Python or NumPy versions differ, because modelled metric values are only
guaranteed bit-identical under identical numerics.
"""
from __future__ import annotations

import platform
import subprocess
import sys
from typing import Dict, Optional

import numpy as np

__all__ = ["environment_fingerprint", "git_revision"]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit (``<sha>[-dirty]``), or ``None`` outside a checkout."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return f"{sha}-dirty" if dirty else sha
    except (OSError, subprocess.SubprocessError):
        return None


def environment_fingerprint(cwd: Optional[str] = None) -> Dict[str, object]:
    """Stable description of the interpreter, libraries and machine."""
    from .. import __version__ as repro_version

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "repro": repro_version,
        "executable": sys.executable,
        "git": git_revision(cwd),
    }
