"""``scale`` suite: the chunked fused path's memory ceiling, gated.

``scale_chunked_memory`` runs the CPU baseline engine over the synthetic
10⁶-node / 10⁷-step graph (:func:`repro.synth.scale_graph`) with a
``memory_budget`` far below the whole-iteration transient footprint
(~:data:`~repro.core.fused.FUSED_BYTES_PER_TERM` × 2·10⁶ terms ≈ 768 MB
budgeted down to :data:`_BUDGET_BYTES`) and gates two machine-portable
quantities:

* ``peak_bytes_per_term`` — the tracemalloc-traced peak of the iteration
  loop (measured by the engine's own ``PeakTracker`` piggybacking on the
  case's tracing window) divided by the per-iteration term count. This is
  the number the budget bounds; it is memory, not time, so it is
  hard-gated on every machine (no wall-clock environment downgrade).
* ``ms_per_kterm`` — wall time per thousand update terms from separate
  *untraced* runs (tracemalloc instrumentation would pollute the timing),
  gated like the other wall-time metrics: hard in the same timing
  environment, downgraded to a warning across machines.

Before recording anything the case asserts the tentpole claims outright:
the budget produced multiple chunks, the traced peak stayed *under* the
budget, and the budgeted layout is byte-identical to an unbudgeted run of
the same parameters on the NumPy backend (≤1e-9 elsewhere).
"""
from __future__ import annotations

import time

import numpy as np

from ...core import CpuBaselineEngine
from ...memtrack import PeakTracker
from ..registry import CaseResult, bench_case
from ..tables import format_table

#: The budget under test: ~12 chunks per iteration on the scale graph,
#: an order of magnitude under the unchunked transient footprint.
_BUDGET_BYTES = 64 * 2**20

#: Untraced timing repeats; the best (minimum) wall time is recorded.
_TIMING_REPEATS = 2


def _timed_run(engine_factory):
    """Best-of-:data:`_TIMING_REPEATS` wall time with GC paused."""
    import gc

    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(_TIMING_REPEATS):
            engine = engine_factory()
            t0 = time.perf_counter()
            candidate = engine.run()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
            result = candidate
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


@bench_case("scale_chunked_memory", source="Sec. V-A (memory ceiling)",
            suites=("scale",))
def run_scale_chunked(ctx) -> CaseResult:
    """Budget-bounded fused chunks at 10⁶ nodes: peak memory gated like time."""
    graph = ctx.scale_graph
    params = ctx.scale_params.with_(memory_budget=_BUDGET_BYTES)

    # Untraced wall-time measurement (and the budgeted layout used for the
    # identity check below).
    budgeted_s, budgeted = _timed_run(lambda: CpuBaselineEngine(graph, params))

    # One unbudgeted run: the execution strategy must not change the
    # optimisation, whatever the budget.
    unbudgeted = CpuBaselineEngine(graph, params.with_(memory_budget=None)).run()
    if ctx.backend_name == "numpy":
        assert np.array_equal(budgeted.layout.coords, unbudgeted.layout.coords)
    else:
        np.testing.assert_allclose(budgeted.layout.coords,
                                   unbudgeted.layout.coords, atol=1e-9, rtol=0)
    assert budgeted.total_terms == unbudgeted.total_terms
    assert unbudgeted.counters["fused_chunks"] == 1.0

    # Traced run: the engine's PeakTracker piggybacks on the tracing window
    # and narrows the traced peak to the iteration loop.
    with PeakTracker(trace=True):
        traced_run = CpuBaselineEngine(graph, params).run()
    traced_peak = traced_run.counters.get("traced_peak_bytes")
    assert traced_peak is not None and traced_peak > 0
    n_chunks = traced_run.counters["fused_chunks"]
    assert n_chunks > 1  # the budget must actually bind at this scale
    # The tentpole claim, asserted outright: per-iteration transients stay
    # under the requested ceiling (FUSED_BYTES_PER_TERM is conservative).
    assert traced_peak <= _BUDGET_BYTES

    terms_per_iteration = traced_run.total_terms / traced_run.iterations
    peak_per_term = traced_peak / terms_per_iteration
    ms_per_kterm = budgeted_s * 1e3 / (budgeted.total_terms / 1e3)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("peak_bytes_per_term", peak_per_term, unit="B/term",
            direction="lower", deterministic=False)
    out.add("ms_per_kterm", ms_per_kterm, unit="ms", direction="lower",
            deterministic=False)
    out.add("fused_chunks_per_iteration", n_chunks, direction="info")
    out.add("memory_budget_bytes", float(_BUDGET_BYTES), unit="B",
            direction="info")
    out.add("traced_peak_bytes", float(traced_peak), unit="B",
            direction="info", deterministic=False)
    out.add("budget_utilization", traced_peak / _BUDGET_BYTES, unit="x",
            direction="info", deterministic=False)
    rss = traced_run.counters.get("peak_rss_bytes")
    if rss is not None:
        out.add("peak_rss_bytes", float(rss), unit="B", direction="info",
                deterministic=False)
    out.tables.append(format_table(
        ["Quantity", "Value"],
        [["nodes / steps", f"{graph.n_nodes:,} / {graph.total_steps:,}"],
         ["terms per iteration", f"{terms_per_iteration:,.0f}"],
         ["memory budget", f"{_BUDGET_BYTES / 2**20:.0f} MiB"],
         ["chunks per iteration", f"{n_chunks:.0f}"],
         ["traced peak", f"{traced_peak / 2**20:.1f} MiB"],
         ["peak bytes/term", f"{peak_per_term:.1f}"],
         ["wall per kterm", f"{ms_per_kterm:.3f} ms"]],
        title="Scale: chunked fused path under a 64 MiB budget (10⁶ nodes)",
    ))
    return out
