"""Optional Numba backend: JIT-compiled write-merge kernels on host arrays.

Coordinate state stays in NumPy (``xp is numpy``), so selection, displacement
arithmetic and the workspace are shared with the reference backend verbatim;
what Numba replaces is the merge scatter — the one stage whose NumPy spelling
needs two ``bincount`` passes plus fancy-indexed read-modify-write. The
fused ``@njit`` loops below make a single pass over the batch and a single
pass over the touched points, mirroring how the paper's CUDA kernel merges
per-thread displacements without staging arrays (Sec. V-B).

Importing this module raises :class:`ImportError` when numba is not
installed; the registry treats that (and any JIT failure surfaced by the
registration self-test) as "backend unavailable" and skips it cleanly.
"""
from __future__ import annotations

import numba  # the ImportError from a missing numba is the availability probe
import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["NumbaBackend"]

_MODES = {"accumulate": 0, "hogwild": 1, "last_writer": 2}


@numba.njit(cache=False)
def _merge_kernel(coords, touched, inverse, counts, all_deltas, mode):  # pragma: no cover - numba-compiled
    """Fused compacted-space merge: one pass over terms, one over touched points."""
    m = touched.shape[0]
    if mode == 2:  # last writer: final occurrence per compacted slot wins
        last = np.empty(m, dtype=np.int64)
        for k in range(inverse.shape[0]):
            last[inverse[k]] = k
        for s in range(m):
            p = touched[s]
            coords[p, 0] += all_deltas[last[s], 0]
            coords[p, 1] += all_deltas[last[s], 1]
        return
    acc = np.zeros((m, 2), dtype=np.float64)
    for k in range(inverse.shape[0]):
        s = inverse[k]
        acc[s, 0] += all_deltas[k, 0]
        acc[s, 1] += all_deltas[k, 1]
    if mode == 1:  # hogwild: average colliding displacements per point
        for s in range(m):
            p = touched[s]
            c = counts[s]
            coords[p, 0] += acc[s, 0] / c
            coords[p, 1] += acc[s, 1] / c
    else:  # accumulate: gradient sum
        for s in range(m):
            p = touched[s]
            coords[p, 0] += acc[s, 0]
            coords[p, 1] += acc[s, 1]


class NumbaBackend(NumpyBackend):
    """Host backend with JIT-fused merge kernels (requires ``numba``).

    Subclasses the reference backend: transfers, compaction and norms are
    *inherited*, not copied, so the two host backends cannot drift apart in
    anything but the merge kernels replaced below.
    """

    name = "numba"

    def merge_scatter(self, coords, touched, inverse, counts, all_deltas,
                      merge: str) -> None:
        try:
            mode = _MODES[merge]
        except KeyError:  # pragma: no cover - callers validate before dispatch
            raise ValueError(f"unknown merge policy {merge!r}") from None
        _merge_kernel(
            coords,
            np.ascontiguousarray(touched, dtype=np.int64),
            np.ascontiguousarray(inverse, dtype=np.int64),
            np.ascontiguousarray(counts, dtype=np.float64),
            np.ascontiguousarray(all_deltas, dtype=np.float64),
            mode,
        )
