"""High-level public API: lay out a pangenome graph with one call.

:func:`layout_graph` is the entry point most users (and the examples) need:
pick an engine, hand it a graph in any supported representation, get a
:class:`~repro.core.base.LayoutResult` back. The individual engine classes
remain available for experiments that need their extra knobs.
"""
from __future__ import annotations

from typing import Optional, Union

from ..graph.lean import LeanGraph
from ..graph.variation_graph import VariationGraph
from .base import LayoutResult, ProgressCallback
from .batch_engine import BatchedLayoutEngine
from .cpu_baseline import CpuBaselineEngine, SerialReferenceEngine
from .gpu_kernel import GpuKernelConfig, OptimizedGpuEngine
from .params import LayoutParams, replace_params

__all__ = ["ENGINES", "layout_graph", "make_engine"]

ENGINES = ("cpu", "serial", "batch", "gpu", "gpu-base", "shm")
"""Engine names accepted by :func:`layout_graph`."""


def _as_lean(graph: Union[VariationGraph, LeanGraph]) -> LeanGraph:
    if isinstance(graph, LeanGraph):
        return graph
    if isinstance(graph, VariationGraph):
        return LeanGraph.from_variation_graph(graph)
    raise TypeError(
        "graph must be a VariationGraph or LeanGraph, got " + type(graph).__name__
    )


def make_engine(
    graph: Union[VariationGraph, LeanGraph],
    engine: str = "cpu",
    params: Optional[LayoutParams] = None,
    gpu_config: Optional[GpuKernelConfig] = None,
    on_progress: Optional[ProgressCallback] = None,
    **overrides,
):
    """Construct (but do not run) the requested layout engine.

    Parameters
    ----------
    graph:
        The pangenome graph to lay out.
    engine:
        ``"cpu"`` — Hogwild-emulating CPU baseline (odgi-layout);
        ``"serial"`` — exact serial reference (small graphs only);
        ``"batch"`` — PyTorch-style batched engine;
        ``"gpu"`` — optimized GPU kernel (all optimisations on);
        ``"gpu-base"`` — base CUDA kernel (no optimisations);
        ``"shm"`` — process-parallel shared-memory hogwild engine
        (:class:`repro.parallel.shm.ShmHogwildEngine`, ``params.workers``
        OS processes).
    params:
        Layout hyper-parameters; defaults to :class:`LayoutParams`.
    gpu_config:
        Optional kernel configuration for the ``"gpu"`` engine.
    on_progress:
        Optional live-progress hook (:data:`repro.core.base
        .ProgressCallback`) installed on the constructed engine — a
        convenience for the common construct-and-run flow; assigning
        ``engine.on_progress`` afterwards is equivalent.
    overrides:
        Per-call :class:`LayoutParams` field overrides applied on top of
        ``params`` (e.g. ``workers=4``, ``fused=False``); unknown names
        raise ``TypeError``.
    """
    lean = _as_lean(graph)
    params = params if params is not None else LayoutParams()
    params = replace_params(params, overrides)
    if engine == "cpu":
        eng = CpuBaselineEngine(lean, params)
    elif engine == "serial":
        eng = SerialReferenceEngine(lean, params)
    elif engine == "batch":
        eng = BatchedLayoutEngine(lean, params)
    elif engine == "gpu":
        cfg = gpu_config if gpu_config is not None else GpuKernelConfig()
        eng = OptimizedGpuEngine(lean, params, cfg)
    elif engine == "gpu-base":
        cfg = gpu_config if gpu_config is not None else GpuKernelConfig.baseline()
        eng = OptimizedGpuEngine(lean, params, cfg)
    elif engine == "shm":
        # Runtime import: parallel depends on core, never the reverse.
        from ..parallel.shm import ShmHogwildEngine

        eng = ShmHogwildEngine(lean, params)
    else:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if on_progress is not None:
        eng.on_progress = on_progress
    return eng


def layout_graph(
    graph: Union[VariationGraph, LeanGraph],
    engine: str = "cpu",
    params: Optional[LayoutParams] = None,
    gpu_config: Optional[GpuKernelConfig] = None,
    on_progress: Optional[ProgressCallback] = None,
    **overrides,
) -> LayoutResult:
    """Compute a 2-D layout of ``graph`` with the chosen engine.

    This is the one run entry point the quickstart, the examples and the
    CLI all share. Keyword ``overrides`` are per-call
    :class:`LayoutParams` field replacements applied on top of ``params``
    (``dataclasses.replace`` semantics, unknown names rejected with a
    ``TypeError`` listing the valid knobs), so one-knob changes never
    require hand-building a frozen dataclass::

        layout_graph(graph, workers=4)            # process-parallel run
        layout_graph(graph, engine="gpu", fused=False, seed=7)

    Routing on the resolved params:

    * ``levels > 1`` — the multilevel V-cycle driver
      (:class:`repro.multilevel.MultilevelDriver`) coarsens the graph and
      runs the chosen engine per hierarchy level;
    * ``workers > 1`` — the process-parallel shared-memory engine
      (:class:`repro.parallel.shm.ShmHogwildEngine`); only the ``"cpu"``
      engine (whose work it partitions) and flat runs (``levels == 1``)
      support it;
    * otherwise the flat single-process engine, untouched.

    ``on_progress`` is the live-progress hook (:data:`repro.core.base
    .ProgressCallback`): whichever runner the routing picks calls it after
    each completed iteration — per-iteration for flat and shm runs, with
    global completed/total counts across all hierarchy levels for
    multilevel runs. ``trace=...`` (a params field, so also usable as an
    override here) writes the run's span trace as schema-versioned JSONL;
    see :mod:`repro.obs`.

    Examples
    --------
    >>> from repro.synth import hla_drb1_like
    >>> from repro.core import layout_graph
    >>> graph = hla_drb1_like(scale=0.05)
    >>> result = layout_graph(graph, engine="gpu", iter_max=5,
    ...                       steps_per_step_unit=1.0)
    >>> result.layout.coords.shape[0] == 2 * graph.n_nodes
    True
    """
    params = params if params is not None else LayoutParams()
    params = replace_params(params, overrides)
    if params.workers > 1 or engine == "shm":
        if engine not in ("cpu", "shm"):
            raise ValueError(
                f"workers={params.workers} requires the 'cpu' engine (the "
                f"shm engine partitions its work), got engine={engine!r}")
        if params.levels > 1:
            # workers > 1 × levels > 1 is already rejected when the params
            # are constructed; this only catches the explicit engine="shm"
            # spelling (workers == 1), with the identical message.
            raise ValueError(
                "workers > 1 and levels > 1 cannot be combined yet; run the "
                "multilevel driver single-process or the shm engine flat")
        return make_engine(graph, "shm", params,
                           on_progress=on_progress).run()
    if params.levels > 1:
        # Runtime import: multilevel depends on core, never the reverse.
        from ..multilevel.driver import MultilevelDriver

        driver = MultilevelDriver(_as_lean(graph), params, engine=engine,
                                  gpu_config=gpu_config)
        driver.on_progress = on_progress
        return driver.run()
    return make_engine(graph, engine, params, gpu_config,
                       on_progress=on_progress).run()
