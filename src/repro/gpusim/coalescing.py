"""Memory-request coalescing model.

On NVIDIA GPUs, the 32 threads of a warp that execute a load instruction
issue *one request*; the memory system then fetches every 32-byte *sector*
the request touches. A fully coalesced request (consecutive 4-byte words)
needs 4 sectors; a scattered request can need up to 32. The paper reports
this as "L1 sectors per request" (Table X) and reduces it from 26.8 to 9.9 by
transposing the cuRAND state from AoS to SoA ("coalesced random states").

The functions here compute sectors-per-request for arbitrary per-thread
address sets, which both the random-state layouts
(:func:`repro.prng.xorshift.state_addresses`) and the node-data layouts
(:func:`repro.core.layout.node_record_addresses`) feed.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["CoalescingReport", "sectors_for_request", "analyze_warp_requests"]


@dataclass(frozen=True)
class CoalescingReport:
    """Aggregate coalescing statistics over many warp-level requests."""

    n_requests: int
    total_sectors: int
    sector_bytes: int

    @property
    def sectors_per_request(self) -> float:
        """Mean sectors fetched per warp request (paper's "L1 Sectors / Req")."""
        if self.n_requests == 0:
            return 0.0
        return self.total_sectors / self.n_requests

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved between L1 and the register file."""
        return self.total_sectors * self.sector_bytes


def sectors_for_request(
    addresses: np.ndarray, access_bytes: int = 4, sector_bytes: int = 32
) -> int:
    """Number of distinct sectors one warp request touches.

    ``addresses`` holds the per-thread byte addresses of a single load/store
    instruction; ``access_bytes`` is the per-thread access width.
    """
    if sector_bytes <= 0 or access_bytes <= 0:
        raise ValueError("sector_bytes and access_bytes must be positive")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    first = addresses // sector_bytes
    last = (addresses + access_bytes - 1) // sector_bytes
    sectors = set()
    for f, l in zip(first.tolist(), last.tolist()):
        sectors.update(range(f, l + 1))
    return len(sectors)


def analyze_warp_requests(
    warp_address_sets: Iterable[np.ndarray],
    access_bytes: int = 4,
    sector_bytes: int = 32,
) -> CoalescingReport:
    """Coalescing statistics over a sequence of warp-level requests."""
    n_requests = 0
    total_sectors = 0
    for addresses in warp_address_sets:
        n_requests += 1
        total_sectors += sectors_for_request(addresses, access_bytes, sector_bytes)
    return CoalescingReport(n_requests, total_sectors, sector_bytes)
