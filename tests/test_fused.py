"""Fused per-iteration execution path: contract, byte-identity, fallbacks.

The fused path (``LayoutParams(fused=...)`` → ``backend.run_iteration``) is
an execution strategy, not an algorithm change: on the NumPy backend a fused
run must be *byte-identical* to the classic per-batch loop for every engine
and merge policy, while dispatching into the backend O(1) times per
iteration instead of O(n_batches). These tests pin that contract — plus the
megablock draw-order equivalence, the hook/history fallbacks, the CLI
plumbing, and (via a stubbed ``numba`` module executing the ``@njit`` source
as plain Python) the fused Numba kernel's selection/merge logic on machines
without the JIT toolchain.
"""
from __future__ import annotations

import importlib
import sys
import types

import numpy as np
import pytest

from repro.backend import get_backend
from repro.core import (
    BatchedLayoutEngine,
    CpuBaselineEngine,
    FusedIterationPlan,
    LayoutParams,
    OptimizedGpuEngine,
    PairSampler,
    SerialReferenceEngine,
    UpdateWorkspace,
    initialize_layout,
    merge_batch,
    run_iteration_host,
    uniform_call_plan,
)
from repro.core.fused import iteration_draws
from repro.prng import Xoshiro256Plus
from repro.synth import PangenomeConfig, simulate_pangenome

MERGES = ("hogwild", "accumulate", "last_writer")


@pytest.fixture(scope="module")
def fused_graph():
    """Small synthetic pangenome with bubbles and a loop (fast to lay out)."""
    return simulate_pangenome(PangenomeConfig(
        n_backbone_nodes=40, n_paths=3, mean_node_length=4.0, bubble_rate=0.12,
        deletion_rate=0.03, n_structural_variants=1, sv_length_nodes=4,
        loop_rate=0.1, seed=29, name="fused-test"))


def _params(merge: str = "hogwild", **kwargs) -> LayoutParams:
    base = dict(iter_max=4, steps_per_step_unit=1.0, seed=23,
                merge_policy=merge, backend="numpy")
    base.update(kwargs)
    return LayoutParams(**base)


# ---------------------------------------------------------------------------
# Plan / megablock bookkeeping
# ---------------------------------------------------------------------------

class TestUniformCallPlan:
    def test_calls_match_unfused_draws(self):
        need, total = uniform_call_plan([64, 64, 10], n_streams=64)
        np.testing.assert_array_equal(need, [1, 1, 1])
        assert total == 8 * 3

    def test_multi_call_segments(self):
        need, total = uniform_call_plan([20, 20, 3], n_streams=7)
        np.testing.assert_array_equal(need, [3, 3, 1])
        assert total == 8 * 7

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_call_plan([4], n_streams=0)
        with pytest.raises(ValueError):
            FusedIterationPlan(sampler=None, workspace=None, merge="hogwild",
                               plan=[4, 0], n_streams=4)

    def test_iteration_draws_equals_per_segment_slicing(self):
        plan = [20, 20, 3]
        streams = 7
        need, total_calls = uniform_call_plan(plan, streams)
        rng_block = Xoshiro256Plus(5, n_streams=streams)
        block = rng_block.next_double_block(total_calls)
        relaid = iteration_draws(block, plan, need, streams)
        # Reference: what the unfused per-batch _uniforms would have drawn.
        rng_ref = Xoshiro256Plus(5, n_streams=streams)
        offset = 0
        for batch in plan:
            expect = PairSampler._uniforms(rng_ref, batch, 8)
            np.testing.assert_array_equal(relaid[:, offset:offset + batch],
                                          expect)
            offset += batch
        assert offset == relaid.shape[1]


# ---------------------------------------------------------------------------
# Engine-level byte-identity and fallbacks
# ---------------------------------------------------------------------------

class TestEngineFusedPath:
    @pytest.mark.parametrize("merge", MERGES)
    @pytest.mark.parametrize("engine_cls", (CpuBaselineEngine,
                                            SerialReferenceEngine))
    def test_fused_byte_identical_to_unfused(self, fused_graph, engine_cls,
                                             merge):
        unfused = engine_cls(fused_graph, _params(merge, fused=False)).run()
        fused = engine_cls(fused_graph, _params(merge, fused=True)).run()
        np.testing.assert_array_equal(fused.layout.coords,
                                      unfused.layout.coords)
        assert fused.total_terms == unfused.total_terms
        assert fused.counters["fused_iterations"] == 4.0
        assert unfused.counters["fused_iterations"] == 0.0

    def test_auto_resolves_to_fused_on_numpy(self, fused_graph):
        result = CpuBaselineEngine(fused_graph, _params()).run()
        assert result.counters["fused_iterations"] > 0

    def test_dispatches_are_o1_per_iteration(self, fused_graph):
        fused = CpuBaselineEngine(fused_graph, _params(fused=True)).run()
        unfused = CpuBaselineEngine(fused_graph, _params(fused=False)).run()
        assert fused.counters["update_dispatches"] == fused.iterations
        assert (unfused.counters["update_dispatches"]
                > unfused.counters["fused_iterations"] + unfused.iterations)

    def test_engines_with_batch_hooks_force_unfused(self, fused_graph):
        batch = BatchedLayoutEngine(fused_graph,
                                    _params(fused=True, batch_size=32))
        gpu = OptimizedGpuEngine(fused_graph, _params(fused=True))
        for engine in (batch, gpu):
            assert not engine.fused_active()
            result = engine.run()
            assert result.counters["fused_iterations"] == 0.0
        # The hook still fired: the batched engine kept its launch accounting.
        assert batch.op_profile.total_launches > 0

    def test_record_history_forces_unfused(self, fused_graph):
        engine = CpuBaselineEngine(fused_graph,
                                   _params(fused=True, record_history=True))
        assert not engine.fused_active()
        result = engine.run()
        assert result.counters["fused_iterations"] == 0.0
        assert len(result.history) == 4

    def test_fused_false_forces_per_batch(self, fused_graph):
        engine = CpuBaselineEngine(fused_graph, _params(fused=False))
        assert not engine.fused_active()

    def test_multilevel_threads_fused_through_levels(self, fused_graph):
        from repro.multilevel import MultilevelDriver

        params = _params(fused=True).with_(levels=2)
        flat_unfused = MultilevelDriver(
            fused_graph, params.with_(fused=False), engine="cpu").run()
        fused = MultilevelDriver(fused_graph, params, engine="cpu").run()
        np.testing.assert_array_equal(fused.layout.coords,
                                      flat_unfused.layout.coords)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            LayoutParams(fused="yes")
        assert LayoutParams(fused=True).fused is True
        assert LayoutParams().fused is None


# ---------------------------------------------------------------------------
# run_iteration contract against a hand-rolled per-segment loop
# ---------------------------------------------------------------------------

class TestRunIterationContract:
    def _manual_reference(self, sampler, plan, streams, merge, coords, eta,
                          iteration, seed):
        """The unfused loop, spelled out: per-segment draw + select + merge."""
        rng = Xoshiro256Plus(seed, n_streams=streams)
        ws = UpdateWorkspace(max(plan), backend=get_backend("numpy"))
        collisions = 0
        for batch_size in plan:
            draws = PairSampler._uniforms(rng, batch_size, 8)
            batch = sampler.select_from_uniforms(draws, batch_size, iteration)
            _, n_coll = merge_batch(coords, batch, eta, merge, ws)
            collisions += n_coll
        return collisions

    @pytest.mark.parametrize("merge", MERGES)
    @pytest.mark.parametrize("plan,streams", [([20, 20, 3], 7), ([1] * 25, 1),
                                              ([64, 64, 10], 64)])
    def test_host_runner_matches_manual_loop(self, fused_graph, merge, plan,
                                             streams):
        sampler = PairSampler(fused_graph, _params(merge))
        base = initialize_layout(fused_graph, seed=3).coords
        expect = base.copy()
        expect_collisions = self._manual_reference(
            sampler, plan, streams, merge, expect, 0.7, iteration=1, seed=41)

        backend = get_backend("numpy")
        fplan = FusedIterationPlan(
            sampler=sampler, merge=merge, plan=plan, n_streams=streams,
            workspace=UpdateWorkspace(max(plan), backend=backend))
        rng = Xoshiro256Plus(41, n_streams=streams)
        got = base.copy()
        stats = backend.run_iteration(
            fplan, got, rng.next_double_block(fplan.calls_per_iteration),
            0.7, 1)
        np.testing.assert_array_equal(got, expect)
        assert stats.n_terms == sum(plan)
        assert stats.n_point_collisions == expect_collisions

    def test_device_selection_flag_routes_through_backend_namespace(
            self, fused_graph):
        """A host backend flagged fused_device_selection must be a no-op swap."""
        backend = get_backend("numpy")
        sampler = PairSampler(fused_graph, _params())
        plan = [16, 16]
        fplan = FusedIterationPlan(
            sampler=sampler, merge="hogwild", plan=plan, n_streams=8,
            workspace=UpdateWorkspace(16, backend=backend))
        base = initialize_layout(fused_graph, seed=5).coords
        rng = Xoshiro256Plus(9, n_streams=8)
        block = rng.next_double_block(fplan.calls_per_iteration)
        expect = base.copy()
        run_iteration_host(backend, fplan, expect, block, 0.5, 0)

        class Deviceish(type(backend)):
            fused_device_selection = True

        got = base.copy()
        run_iteration_host(Deviceish(), fplan, got, block, 0.5, 0)
        np.testing.assert_array_equal(got, expect)
        # The device bundle was cached in the chunk-shared scratch under the
        # backend's name (PR 8: uploaded once per run, not once per chunk).
        assert f"arrays/{backend.name}" in fplan.scratch
        assert f"arrays/{backend.name}" not in fplan.cache


# ---------------------------------------------------------------------------
# Numba fused kernel logic, executed as plain Python via a stubbed numba
# ---------------------------------------------------------------------------

@pytest.fixture()
def numba_backend_module(monkeypatch):
    """Import repro.backend.numba_backend with ``numba.njit`` as a no-op.

    On machines without numba this executes the kernels' *source* as plain
    Python — same IEEE double math, same control flow — so the fused kernel
    logic is exercised everywhere, not only on the CI job that installs the
    JIT toolchain. The module is evicted afterwards so other tests see the
    real import behaviour.
    """
    stub = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def decorate(func):
            return func

        return decorate

    stub.njit = njit
    monkeypatch.setitem(sys.modules, "numba", stub)
    sys.modules.pop("repro.backend.numba_backend", None)
    module = importlib.import_module("repro.backend.numba_backend")
    yield module
    sys.modules.pop("repro.backend.numba_backend", None)


class TestNumbaFusedKernel:
    def test_self_test_passes_in_pure_python(self, numba_backend_module):
        numba_backend_module.NumbaBackend().self_test()

    @pytest.mark.parametrize("merge", MERGES)
    def test_fused_kernel_matches_numpy_reference(self, fused_graph,
                                                  numba_backend_module, merge):
        """Selection + merge logic of the @njit kernel vs the NumPy path.

        Integer selection must agree *exactly* (an off-by-one pair pick is a
        logic bug, not rounding), which the collision-count equality pins;
        coordinates are held to the conformance tolerance.
        """
        params = _params(merge)
        sampler = PairSampler(fused_graph, params)
        numpy_backend = get_backend("numpy")
        stub_backend = numba_backend_module.NumbaBackend()
        plan = [20, 20, 3]
        streams = 7
        base = initialize_layout(fused_graph, seed=7).coords

        def run(backend, coords):
            fplan = FusedIterationPlan(
                sampler=sampler, merge=merge, plan=plan, n_streams=streams,
                workspace=UpdateWorkspace(max(plan), backend=numpy_backend))
            rng = Xoshiro256Plus(params.seed, n_streams=streams)
            totals = []
            for iteration in range(3):  # crosses the cooling boundary
                block = rng.next_double_block(fplan.calls_per_iteration)
                stats = backend.run_iteration(fplan, coords, block,
                                              0.9 - 0.2 * iteration, iteration)
                totals.append((stats.n_terms, stats.n_point_collisions))
            return totals

        expect = base.copy()
        ref_stats = run(numpy_backend, expect)
        got = base.copy()
        stub_stats = run(stub_backend, got)
        assert stub_stats == ref_stats
        np.testing.assert_allclose(got, expect, atol=1e-9, rtol=0)

    def test_merge_scatter_kernel_matches_reference(self, numba_backend_module,
                                                    fused_graph):
        sampler = PairSampler(fused_graph, _params())
        rng = Xoshiro256Plus(3, n_streams=32)
        batch = sampler.sample(rng, 96, iteration=0)
        base = initialize_layout(fused_graph, seed=1).coords
        from repro.core import apply_batch

        for merge in MERGES:
            expect = base.copy()
            ref = apply_batch(expect, batch, 0.6, merge=merge)
            got = base.copy()
            stats = apply_batch(got, batch, 0.6, merge=merge,
                                backend=numba_backend_module.NumbaBackend())
            np.testing.assert_allclose(got, expect, atol=1e-12, rtol=0)
            assert stats.n_point_collisions == ref.n_point_collisions
