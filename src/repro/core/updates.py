"""The stress-gradient update shared by every layout engine.

Implements lines 14–15 of Alg. 1 following the odgi-layout / Zheng-et-al.
formulation: each selected term ``(v_i, v_j, d_ref)`` moves both
visualisation points along their connecting line so the layout distance
approaches the reference distance, with a per-term step size
``μ = min(η · d_ref^-2, 1)``.

A *batch* of terms is applied at once. Within a batch every term reads the
coordinates as they were at the start of the batch and the writes are merged
afterwards — exactly the staleness the paper's Hogwild!/large-batch analysis
discusses (Sec. III-A, IV-A): small batches behave like the serial algorithm,
huge batches accumulate stale updates and degrade quality (Table III).

Three write-merge policies are offered:

* ``"hogwild"`` (default) — colliding terms' displacements are averaged per
  point. Sequentially applied full-strength corrections each pull the point
  toward their own target rather than stacking, so the average is the closest
  batched proxy for asynchronous Hogwild stores; collision-free terms are
  unaffected.
* ``"accumulate"`` — displacements of colliding terms add up; faithful to a
  pure gradient-sum formulation but can overshoot when the per-term step is
  saturated (μ = 1), so it is exposed for sensitivity studies only.
* ``"last_writer"`` — only one colliding term survives per point, modelling a
  racy unsynchronised store; provided to study collision sensitivity.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .selection import StepBatch

__all__ = ["UpdateStats", "compute_displacements", "apply_batch", "batch_stress"]

_MIN_DISTANCE = 1e-9


@dataclass
class UpdateStats:
    """Counters describing one applied batch (consumed by profiling models)."""

    n_terms: int
    n_zero_ref: int
    n_point_collisions: int
    mean_step_magnitude: float
    max_step_magnitude: float


def compute_displacements(
    coords: np.ndarray, batch: StepBatch, eta: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-term displacement vectors for both endpoints of every term.

    Returns ``(point_i, point_j, delta)`` where ``point_*`` are flat indices
    into the ``(2N, 2)`` coordinate array and ``delta`` is the displacement to
    subtract from point ``i`` (and add to point ``j``).
    """
    d_ref = batch.d_ref
    valid = d_ref > 0
    d_safe = np.where(valid, d_ref, 1.0)
    w = 1.0 / (d_safe * d_safe)
    mu = np.minimum(eta * w, 1.0)

    point_i = 2 * batch.node_i + batch.vis_i
    point_j = 2 * batch.node_j + batch.vis_j
    diff = coords[point_i] - coords[point_j]
    mag = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    mag_safe = np.maximum(mag, _MIN_DISTANCE)
    delta_scalar = np.where(valid, mu * (mag - d_safe) / 2.0, 0.0)
    # Degenerate coincident points: nudge along x to separate them.
    unit = diff / mag_safe[:, None]
    coincident = mag < _MIN_DISTANCE
    if np.any(coincident):
        unit[coincident] = np.array([1.0, 0.0])
    delta = unit * delta_scalar[:, None]
    return point_i, point_j, delta


def apply_batch(
    coords: np.ndarray,
    batch: StepBatch,
    eta: float,
    merge: str = "hogwild",
) -> UpdateStats:
    """Apply one batch of updates to ``coords`` in place and return statistics."""
    if merge not in ("hogwild", "accumulate", "last_writer"):
        raise ValueError("merge must be 'hogwild', 'accumulate' or 'last_writer'")
    if len(batch) == 0:
        return UpdateStats(0, 0, 0, 0.0, 0.0)
    point_i, point_j, delta = compute_displacements(coords, batch, eta)

    all_points = np.concatenate([point_i, point_j])
    all_deltas = np.concatenate([-delta, delta])
    n_unique = np.unique(all_points).size
    n_collisions = int(all_points.size - n_unique)

    if merge == "accumulate":
        np.add.at(coords, all_points, all_deltas)
    elif merge == "hogwild":
        summed = np.zeros_like(coords)
        counts = np.zeros(coords.shape[0], dtype=np.float64)
        np.add.at(summed, all_points, all_deltas)
        np.add.at(counts, all_points, 1.0)
        touched = counts > 0
        coords[touched] += summed[touched] / counts[touched, None]
    else:
        # Last writer wins: keep only the final delta targeting each point,
        # mirroring an unsynchronised store race.
        reversed_points = all_points[::-1]
        _, first_in_reversed = np.unique(reversed_points, return_index=True)
        keep = all_points.size - 1 - first_in_reversed
        coords[all_points[keep]] += all_deltas[keep]

    mags = np.sqrt(np.einsum("ij,ij->i", delta, delta))
    return UpdateStats(
        n_terms=len(batch),
        n_zero_ref=int((batch.d_ref <= 0).sum()),
        n_point_collisions=n_collisions,
        mean_step_magnitude=float(mags.mean()) if mags.size else 0.0,
        max_step_magnitude=float(mags.max()) if mags.size else 0.0,
    )


def batch_stress(coords: np.ndarray, batch: StepBatch) -> float:
    """Mean normalised stress of the batch's terms under the current layout.

    This is the quantity minimised by the algorithm (Alg. 1 line 14) and the
    building block of the path-stress metrics in :mod:`repro.metrics`.
    """
    valid = batch.d_ref > 0
    if not np.any(valid):
        return 0.0
    point_i = 2 * batch.node_i + batch.vis_i
    point_j = 2 * batch.node_j + batch.vis_j
    diff = coords[point_i] - coords[point_j]
    mag = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    d = batch.d_ref
    terms = ((mag[valid] - d[valid]) / d[valid]) ** 2
    return float(terms.mean())
